//! The paper's analytic timing model (§2.2, Equations 1–3).
//!
//! * Eq. 1: `T_host = log2 N × (Send + SDMA + Network + Recv + RDMA + HRecv)`
//! * Eq. 2: `T_nic  = Send + log2 N × (Network + Recv) + RDMA + HRecv`
//! * Eq. 3: factor of improvement = `T_host / T_nic`
//!
//! The component terms are *derived from the simulator's configuration* —
//! firmware cycle counts divided by the NIC clock, plus the host overheads —
//! so the analytic prediction and the simulation share one source of truth.
//! The paper folds all NIC-side per-step barrier processing into its *Recv*
//! term; we expose it separately as [`CostModel::nic_step_us`] and add it to
//! the per-step NIC cost, which is what the measured prototype actually
//! pays (§6 discusses exactly this overhead for the GB case).

use crate::nic::BarrierCosts;
use gmsim_gm::{ExtPacket, GmConfig, Payload};
use gmsim_myrinet::{wire_size, LinkSpec, TopologyBuilder};

/// Relative tolerance of the PE/dissemination scaling forms against
/// simulation, across 32–1024 nodes and both NIC generations (worst
/// observed error ≈ 3.5%).
pub const PE_MODEL_TOLERANCE: f64 = 0.10;

/// Relative tolerance of the calibrated GB pipeline forms against
/// simulation across the same grid at `dim = 8` (worst observed error
/// ≈ 11%; the forms are fits, not first-principles derivations).
pub const GB_MODEL_TOLERANCE: f64 = 0.20;

/// Relative tolerance of the payload latency-vs-size forms
/// ([`CostModel::nic_bcast_us`] and friends) against simulation across
/// the BENCH_payload grid (1 B – 1 MiB, 16–1024 nodes, eager and
/// pipelined). The forms model the steady-state bottleneck stage with
/// calibrated wormhole-contention factors; they approximate CPU/wire
/// overlap inside a stage and the crossover neighborhood (where two
/// stages tie) is where the error peaks, so this is a calibrated
/// envelope rather than an exact derivation (worst observed cell ≈
/// +45%, most within ±20%).
pub const PAYLOAD_MODEL_TOLERANCE: f64 = 0.50;

/// Component costs in microseconds, as in Figure 2.
///
/// ```
/// use gmsim_gm::GmConfig;
/// use gmsim_lanai::NicModel;
/// use nic_barrier::CostModel;
///
/// let m = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
/// // Eq. 3 predicts a factor near the paper's published 1.78x at 16 nodes.
/// assert!((m.improvement(16) - 1.78).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Host posts a token until the NIC can detect it.
    pub send_us: f64,
    /// SDMA pickup + payload staging on the NIC.
    pub sdma_us: f64,
    /// Wire time: switch fall-through + propagation + serialization.
    pub network_us: f64,
    /// NIC reception handling of one data packet (host path).
    pub recv_us: f64,
    /// NIC reception handling of one NIC-terminated barrier packet —
    /// cheaper than the data path (no receive-token lookup, no RDMA prep).
    pub nic_recv_us: f64,
    /// NIC→host delivery of one event.
    pub rdma_us: f64,
    /// Host processing of one returned event.
    pub hrecv_us: f64,
    /// Firmware cost of one NIC-resident barrier step (PE), folded into
    /// *Recv* by the paper's Eq. 2 but paid by the real firmware.
    pub nic_step_us: f64,
    /// Extra wire cost of a cross-leaf hop in the two-level Clos fabric
    /// that clusters beyond 16 hosts use: two additional switch
    /// fall-throughs plus two additional link propagations (wormhole
    /// routing pays serialization only once).
    pub cross_extra_us: f64,
    /// Firmware cost of processing one GB tree collective token.
    pub gb_token_us: f64,
    /// Firmware cost of absorbing one gather arrival (GB up phase).
    pub gb_gather_us: f64,
    /// Firmware cost of one child broadcast send (GB down phase).
    pub gb_child_us: f64,
    /// Host-bus DMA time per payload byte (both SDMA and RDMA engines).
    pub dma_us_per_byte: f64,
    /// Link serialization time per payload byte (Myrinet 1.28 Gb/s).
    pub wire_us_per_byte: f64,
    /// Base retransmission timeout of the reliable connection layer — the
    /// latency a dropped packet costs before its timer fires (backoff
    /// level 0). Used by the [`advisor`] fault penalty.
    pub retransmit_us: f64,
}

impl CostModel {
    /// Derive the model from a cluster configuration (single-crossbar
    /// topology assumed, as in the paper's testbeds).
    pub fn from_config(cfg: &GmConfig) -> Self {
        let clock = cfg.nic.clock;
        let us = |cycles: u64| clock.cycles(cycles).as_us_f64();
        let costs = cfg.nic.costs;
        let bc = BarrierCosts::GM_1_2_3;
        // Wire: NIC→switch→NIC with GM framing on a small barrier packet.
        let link = LinkSpec::MYRINET_1280;
        let bytes = wire_size(ExtPacket::WIRE_BYTES, 1);
        let network = TopologyBuilder::DEFAULT_SWITCH_LATENCY.as_us_f64()
            + 2.0 * link.propagation.as_us_f64()
            + link.serialize(bytes).as_us_f64();
        // Small-message DMA byte time is sub-microsecond; fold it in.
        let dma_us = |b: usize| b as f64 / cfg.nic.dma_bytes_per_ns / 1_000.0;
        CostModel {
            send_us: cfg.host_send_overhead.as_us_f64(),
            sdma_us: us(costs.sdma_cycles + costs.send_cycles) + dma_us(8),
            network_us: network,
            recv_us: us(costs.recv_cycles + costs.ack_tx_cycles),
            nic_recv_us: us(costs.ext_recv_cycles + costs.ack_tx_cycles),
            rdma_us: us(costs.rdma_cycles) + dma_us(16),
            hrecv_us: cfg.host_recv_overhead.as_us_f64(),
            nic_step_us: us(bc.pe_send_cycles + bc.pe_match_cycles + bc.record_cycles),
            cross_extra_us: 2.0 * TopologyBuilder::DEFAULT_SWITCH_LATENCY.as_us_f64()
                + 2.0 * link.propagation.as_us_f64(),
            gb_token_us: us(bc.gb_token_cycles),
            gb_gather_us: us(bc.gb_gather_cycles),
            gb_child_us: us(bc.gb_child_cycles),
            dma_us_per_byte: 1.0 / cfg.nic.dma_bytes_per_ns / 1_000.0,
            wire_us_per_byte: 1.0 / link.bytes_per_ns / 1_000.0,
            retransmit_us: cfg.retransmit_timeout.as_us_f64(),
        }
    }

    /// `ceil(log2 n)` rounds of the PE algorithm.
    pub fn rounds(n: usize) -> u32 {
        assert!(n >= 1);
        (n as f64).log2().ceil() as u32
    }

    /// Equation 1: predicted host-based PE barrier latency (µs).
    pub fn host_barrier_us(&self, n: usize) -> f64 {
        let step = self.send_us
            + self.sdma_us
            + self.network_us
            + self.recv_us
            + self.rdma_us
            + self.hrecv_us;
        Self::rounds(n) as f64 * step
    }

    /// Equation 2 (with the explicit firmware step term): predicted
    /// NIC-based PE barrier latency (µs).
    pub fn nic_barrier_us(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.nic_recv_us + self.nic_step_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 2 exactly as printed in the paper (no firmware-step term;
    /// the paper folds step processing into its *Recv*).
    pub fn nic_barrier_us_paper_form(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.recv_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 3: predicted factor of improvement.
    pub fn improvement(&self, n: usize) -> f64 {
        self.host_barrier_us(n) / self.nic_barrier_us(n)
    }

    // ---- Scale-aware forms (N beyond the paper's 16-node testbed) ----
    //
    // These extend Eqs. 1–2 to the two-level Clos fabric that
    // `TopologyBuilder::for_cluster` builds past 16 hosts: a round whose
    // partner lives in another 8-host leaf pays `cross_extra_us` on the
    // wire, everything else is unchanged. The BENCH_scale study
    // cross-checks every simulated point against these within stated
    // tolerances.

    /// Wire cost of one hop between endpoints `dist` ranks apart in an
    /// `n`-node cluster: the single-crossbar term, plus the cross-leaf
    /// surcharge once the cluster is a Clos and the partner cannot share a
    /// leaf, plus a second surcharge once the cluster is a three-level
    /// Clos (`n > 1024`) and the partner lives in another 64-host pod —
    /// the leaf→spine→core→spine→leaf route pays two more fall-throughs
    /// and two more propagations than the in-pod leaf→spine→leaf route.
    fn hop_us(&self, n: usize, dist: usize) -> f64 {
        let pod_hosts = TopologyBuilder::CLOS_LEAF_HOSTS * TopologyBuilder::CLOS_LEAF_HOSTS;
        let clos = n > TopologyBuilder::MAX_SINGLE_SWITCH_HOSTS;
        let clos3 = n > TopologyBuilder::MAX_TWO_LEVEL_HOSTS;
        if clos3 && dist >= pod_hosts {
            self.network_us + 2.0 * self.cross_extra_us
        } else if clos && dist >= TopologyBuilder::CLOS_LEAF_HOSTS {
            self.network_us + self.cross_extra_us
        } else {
            self.network_us
        }
    }

    /// Scale-aware Eq. 2: NIC-based PE latency on the standard fabric.
    /// Round `k`'s partner is `2^k` ranks away, so the first
    /// `log2(leaf size)` rounds stay intra-leaf. Equals
    /// [`CostModel::nic_barrier_us`] for `n <= 16`.
    pub fn nic_pe_us(&self, n: usize) -> f64 {
        let per_round: f64 = (0..Self::rounds(n))
            .map(|k| self.hop_us(n, 1usize << k) + self.nic_recv_us + self.nic_step_us)
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Scale-aware Eq. 1: host-based PE latency on the standard fabric.
    pub fn host_pe_us(&self, n: usize) -> f64 {
        (0..Self::rounds(n))
            .map(|k| {
                self.send_us
                    + self.sdma_us
                    + self.hop_us(n, 1usize << k)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
            })
            .sum()
    }

    /// Scale-aware NIC dissemination latency at radix 2. Same round
    /// structure as PE with round-`k` distance `2^k`; at powers of two the
    /// two algorithms (and predictions) coincide.
    pub fn nic_dissemination_us(&self, n: usize) -> f64 {
        self.nic_dissemination_radix_us(n, 2)
    }

    /// Scale-aware host dissemination latency at radix 2.
    pub fn host_dissemination_us(&self, n: usize) -> f64 {
        self.host_dissemination_radix_us(n, 2)
    }

    /// Per-round structure of the radix-`radix` dissemination schedule
    /// over `n` ranks: for each round, the worst hop distance and the
    /// number of arrivals `(j·radix^k < n)` the rank must absorb.
    fn kary_rounds(n: usize, radix: usize) -> Vec<(usize, usize)> {
        assert!(radix >= 2, "dissemination radix must be at least 2");
        let mut rounds = Vec::new();
        let mut stride = 1usize;
        while stride < n {
            let mut worst = 0usize;
            let mut arrivals = 0usize;
            for j in 1..radix {
                match j.checked_mul(stride) {
                    Some(d) if d < n => {
                        worst = d;
                        arrivals += 1;
                    }
                    _ => break,
                }
            }
            rounds.push((worst, arrivals));
            stride = match stride.checked_mul(radix) {
                Some(s) => s,
                None => break,
            };
        }
        rounds
    }

    /// Scale-aware NIC dissemination latency at radix `radix`: per round
    /// the worst-distance hop overlaps the others' wire time, then the NIC
    /// absorbs each of the round's `radix − 1` arrivals serially. At
    /// `radix = 2` this is term-for-term Eq. 2 with the PE hop distances,
    /// so it reduces exactly to [`CostModel::nic_dissemination_us`].
    pub fn nic_dissemination_radix_us(&self, n: usize, radix: usize) -> f64 {
        let per_round: f64 = Self::kary_rounds(n, radix)
            .into_iter()
            .map(|(worst, arrivals)| {
                self.hop_us(n, worst)
                    + self.nic_recv_us
                    + self.nic_step_us
                    + (arrivals - 1) as f64 * (self.nic_recv_us + self.nic_step_us)
            })
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Scale-aware host dissemination latency at radix `radix`: each round
    /// posts `radix − 1` sends and pays the full host round trip per
    /// arrival, with only the worst hop on the critical path. Reduces
    /// exactly to [`CostModel::host_dissemination_us`] at `radix = 2`.
    pub fn host_dissemination_radix_us(&self, n: usize, radix: usize) -> f64 {
        Self::kary_rounds(n, radix)
            .into_iter()
            .map(|(worst, arrivals)| {
                self.send_us
                    + self.sdma_us
                    + self.hop_us(n, worst)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
                    + (arrivals - 1) as f64
                        * (self.send_us
                            + self.sdma_us
                            + self.recv_us
                            + self.rdma_us
                            + self.hrecv_us)
            })
            .sum()
    }

    /// Depth of the `dim`-ary heap-shaped GB tree over `n` ranks: the
    /// level of the deepest rank, `n - 1`.
    pub fn gb_depth(n: usize, dim: usize) -> u32 {
        assert!(n >= 1 && dim >= 1);
        let mut rank = n - 1;
        let mut level = 0;
        while rank > 0 {
            rank = (rank - 1) / dim;
            level += 1;
        }
        level
    }

    /// NIC-based GB latency.
    ///
    /// Unlike PE, measured GB latency is *linear in `log2 n`* rather than
    /// stepping with tree depth: consecutive rounds pipeline through the
    /// tree, and each doubling of the cluster adds `dim - 1` gather
    /// absorptions plus child broadcast sends to the critical cycle
    /// (matching §6's observation that the tree dimension's impact is
    /// muted by pipelining). The fixed part is the tree token, which is
    /// far costlier than PE's. Calibrated for moderate arities (the
    /// scaling study's `dim = 8`); exact only to ~±10%.
    pub fn nic_gb_us(&self, n: usize, dim: usize) -> f64 {
        let per_child = (dim.saturating_sub(1)).max(1) as f64;
        self.send_us
            + self.gb_token_us
            + Self::rounds(n) as f64 * per_child * (self.gb_gather_us + self.gb_child_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Host-based GB latency: the same pipelined-round shape as
    /// [`CostModel::nic_gb_us`], but each per-child absorption goes
    /// through the NIC's full data-path receive handling. Calibrated for
    /// moderate arities; exact only to ~±15%.
    pub fn host_gb_us(&self, n: usize, dim: usize) -> f64 {
        let per_child = (dim.saturating_sub(1)).max(1) as f64;
        self.send_us
            + self.sdma_us
            + Self::rounds(n) as f64 * per_child * self.recv_us
            + self.rdma_us
            + self.hrecv_us
    }

    // ---- Payload latency-vs-size forms (data-carrying collectives) ----
    //
    // A data-carrying collective moves `payload.bytes` through the
    // schedule in `payload.segments()` pipelined segments (eager = one
    // segment). The testbed measures *steady-state per-operation latency*:
    // operations stream back-to-back, so the measured mean converges to
    // the slowest pipeline stage's period, not the one-shot fill path.
    // These forms therefore model the bottleneck stage of each schedule:
    //
    //   bcast/reduce:  T ≈ max(sender SDMA loop, worst-link wire, combine)
    //   allreduce:     T ≈ small-payload period + serialized payload fill
    //                  (the per-node staging buffer single-buffers the
    //                  payload, so rounds cannot overlap once data rides
    //                  along — the fill path itself becomes the period)
    //   scan:          T ≈ base rounds + R × contended wire per round
    //
    // Contention factors are calibrated against the wormhole fabric:
    // a `dim`-ary tree ≤16 nodes fits one crossbar and only shares the
    // parent's egress link (factor `dim`); past that, inter-switch trunks
    // carry tree edges from multiple levels and the worst-link factor
    // grows logarithmically in the extra depth. Scan's shifted-ring
    // rounds saturate the bisection: the observed per-round wire cost is
    // `sqrt(n)/2 ×` the uncontended serialization across n = 4..256.
    // The BENCH_payload study gates every simulated point against these
    // within [`PAYLOAD_MODEL_TOLERANCE`].

    /// Host-bus DMA time for `bytes` (engine startup is charged in
    /// handler cycles, so engine time is pure per-byte).
    fn dma_bytes_us(&self, bytes: u64) -> f64 {
        bytes as f64 * self.dma_us_per_byte
    }

    /// Wire serialization of `bytes` of payload.
    fn wire_bytes_us(&self, bytes: u64) -> f64 {
        bytes as f64 * self.wire_us_per_byte
    }

    /// Child counts of each ancestor on the rank `n - 1` → root path of
    /// the `dim`-ary heap tree (deepest-first). The first entry is often
    /// below `dim` — the deepest parent may be only partially filled.
    fn tree_path_fanins(n: usize, dim: usize) -> Vec<usize> {
        let mut rank = n - 1;
        let mut fanins = Vec::new();
        while rank > 0 {
            let parent = (rank - 1) / dim;
            let children = (1..=dim).filter(|j| parent * dim + j < n).count();
            fanins.push(children);
            rank = parent;
        }
        fanins
    }

    /// Worst-link contention factor for a down-tree broadcast carrying
    /// `segs` segments. `dim` worms share the parent egress inside one
    /// crossbar; each extra tree level past the single-switch depth adds
    /// trunk sharing with logarithmic saturation, and segmentation lets
    /// worms from distinct subtree streams *interleave* on a trunk, which
    /// grows the factor as `sqrt(segs)`, saturating at 3× (measured: 2 at
    /// n = 16 for all sizes; 5.5 → 8 at n = 64 and 5 → 20 at n = 256 as
    /// eager worms split into 16 segments). Past 256 nodes the Clos
    /// fabric's bisection grows faster than the binary tree's trunk
    /// usage, so the interleaving ceiling *shrinks* as `sqrt(256 / n)`
    /// (measured 11.5 at n = 1024 vs 20 at n = 256); `n / 8` bounds the
    /// distinct streams a trunk can carry at all.
    fn bcast_link_factor(n: usize, dim: usize, segs: f64) -> f64 {
        let levels = Self::gb_depth(n, dim) as f64;
        let extra = (levels - 3.0).max(1.0);
        let base = (n - 1).min(dim) as f64 * (1.0 + extra.log2());
        // Interleaving is worst at moderate segment counts (~16-64):
        // a few long segments collide on the trunks, while very deep
        // pipelines smooth into steady streams and the factor decays
        // back toward the eager value (measured at n = 256: 20 at 16
        // segments, 21 at 64, then 11.7 at 256).
        let peak = (3.0 * (256.0 / n as f64).sqrt().min(1.0)).max(1.0);
        let interleave = (segs.sqrt().min(peak) * (64.0 / segs).sqrt().min(1.0)).max(1.0);
        let cap = (n as f64 / 8.0).max(dim as f64);
        (base * interleave).min(cap)
    }

    /// Steady-state sender-side stage: host send/completion loop, tree
    /// token, SDMA handler, and the payload's host-bus DMA.
    fn tree_sender_us(&self, bytes: u64) -> f64 {
        self.send_us + self.hrecv_us + self.gb_token_us + self.sdma_us + self.dma_bytes_us(bytes)
    }

    /// Predicted NIC-based broadcast per-operation latency (µs) for
    /// `payload` over a `dim`-ary tree: the slowest of the root's SDMA
    /// loop, the worst fabric link (carrying `bcast_link_factor` copies
    /// of every segment), and a forwarding node's receive + RDMA work.
    pub fn nic_bcast_us(&self, n: usize, dim: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let seg = payload.seg_bytes.get().min(bytes.max(1));
        let segs = payload.segments().get() as f64;
        let sender = self.tree_sender_us(bytes);
        let link = Self::bcast_link_factor(n, dim, segs) * segs * self.wire_bytes_us(seg);
        let receiver =
            segs * self.nic_recv_us + self.dma_bytes_us(bytes) + self.rdma_us + self.hrecv_us;
        sender.max(link).max(receiver)
    }

    /// Predicted NIC-based reduce per-operation latency (µs): gather
    /// traffic thins toward the root, so no trunk contention — the
    /// bottleneck is a parent absorbing `dim` children (its ingress wire,
    /// or the combine RDMA of `dim` full payloads).
    pub fn nic_reduce_us(&self, n: usize, dim: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let seg = payload.seg_bytes.get().min(bytes.max(1));
        let segs = payload.segments().get() as f64;
        let fan = (n - 1).min(dim) as f64;
        let sender = self.tree_sender_us(bytes);
        let ingress = fan * segs * self.wire_bytes_us(seg);
        let combine = fan
            * self
                .dma_bytes_us(bytes)
                .max(segs * (self.recv_us + self.gb_gather_us))
            + self.rdma_us;
        sender.max(ingress).max(combine)
    }

    /// Small-payload allreduce period: the gather-side critical cycle
    /// (per-level absorptions and down-broadcast child sends along the
    /// deepest path).
    fn allreduce_base_us(&self, n: usize, dim: usize) -> f64 {
        let mut rank = n - 1;
        let mut per_level = 0.0;
        for fan in Self::tree_path_fanins(n, dim) {
            let parent = (rank - 1) / dim;
            per_level += self.hop_us(n, rank - parent)
                + fan as f64 * (self.nic_recv_us + self.gb_gather_us + self.gb_child_us);
            rank = parent;
        }
        self.send_us + self.hrecv_us + self.gb_token_us + self.sdma_us + per_level + self.rdma_us
    }

    /// Predicted NIC-based allreduce per-operation latency (µs). The
    /// per-node SRAM staging buffer single-buffers the payload, so
    /// consecutive operations cannot overlap their data movement: the
    /// serialized fill path — leaf SDMA, per-level combine RDMA
    /// overlapped with the up-wire, the down-broadcast wire, final RDMA —
    /// adds directly onto the small-payload period. Trees deeper than one
    /// crossbar pay trunk contention on the way up, modeled as a linear
    /// depth-growth factor on the fill (1× at 4 levels, saturating at 2×
    /// from 8 levels on — deeper Clos fabrics add matching bisection).
    pub fn nic_allreduce_us(&self, n: usize, dim: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let segs = payload.segments().get() as f64;
        let per_level: f64 = Self::tree_path_fanins(n, dim)
            .iter()
            .map(|&fan| {
                (fan as f64 * self.dma_bytes_us(bytes)).max(self.wire_bytes_us(bytes))
                    + (segs - 1.0) * self.nic_recv_us
            })
            .sum();
        let fill = self.dma_bytes_us(bytes)
            + per_level
            + self.wire_bytes_us(bytes)
            + self.dma_bytes_us(bytes);
        let depth_growth = (1.0 + (Self::gb_depth(n, dim) as f64 - 4.0) / 4.0).clamp(1.0, 2.0);
        self.allreduce_base_us(n, dim) + depth_growth * fill
    }

    /// Predicted NIC-based scan per-operation latency (µs). Scan runs
    /// `log2 n` dependent PE-shaped combining rounds per operation; in
    /// round `k` every rank ships its running value `2^k` ranks away, so
    /// the fabric carries `n - 2^k` simultaneous worms and the effective
    /// per-round wire cost is `sqrt(n)/2` serializations (bisection
    /// saturation, calibrated at n = 4..256), floored by the combine
    /// RDMA.
    pub fn nic_scan_us(&self, n: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let segs = payload.segments().get() as f64;
        let base = self.nic_pe_us(n) + self.sdma_us;
        // Per-round NIC work already charged in the base; short worms
        // hide their wire/DMA time entirely under it, and a worm only
        // builds bisection queueing once its serialization exceeds that
        // injection pacing — hence the min(1, wire/cpu) damping.
        let cpu = self.nic_recv_us + self.nic_step_us;
        let wire = self.wire_bytes_us(bytes);
        // Bisection saturation: `sqrt(n)/2` serializations per round
        // (measured at n = 4..256); past 256 nodes the Clos bisection
        // outgrows the schedule's demand and the factor damps as
        // `(256/n)^(1/4)` (measured ≈ 12 at n = 1024, not 16).
        let bisect = (n as f64).sqrt() / 2.0 * (256.0 / n as f64).powf(0.25).min(1.0);
        let contention = bisect * (wire / cpu).min(1.0);
        let per_round = (contention * wire).max(self.dma_bytes_us(bytes)).max(cpu) - cpu
            + (segs - 1.0) * self.nic_recv_us;
        base + self.dma_bytes_us(bytes) + Self::rounds(n) as f64 * per_round
    }
}

/// Relative regret tolerance of the [`advisor`]: the advisor's pick must
/// measure within this fraction of the measured-best candidate across the
/// BENCH_advisor scenario sweep (N × payload × fault rate). The bound is
/// inherited from the weakest analytic form the advisor ranks with — the
/// calibrated GB pipeline fits ([`GB_MODEL_TOLERANCE`]) — plus headroom
/// for the first-order fault penalty, which models only the base-RTO
/// stall of a single drop.
pub const ADVISOR_REGRET_TOLERANCE: f64 = 0.25;

pub mod advisor {
    //! Algorithm advisor: given a scenario (group size, payload, fault
    //! rate, start skew — the topology tier is implied by the group size),
    //! rank every (placement, algorithm, parameter) candidate by the
    //! analytic cost model and recommend the cheapest.
    //!
    //! The prediction is the scale-aware latency form for the candidate
    //! (GB trees use the calibrated pipeline form at its calibration arity
    //! with a measured arity correction, and payload-carrying trees add a
    //! calibrated incast surcharge — see [`predict`]), plus two
    //! scenario penalties:
    //!
    //! * **faults** — a dropped packet costs the collective a fraction of
    //!   one base retransmission timeout, so the expected penalty is
    //!   `rate × total wire messages × RTO × stall fraction`. The stall
    //!   fraction is simulation-calibrated per schedule family: tree
    //!   schedules serialize through the dropped edge and pay essentially
    //!   the whole timeout, while exchange schedules (PE, dissemination)
    //!   keep every other rank progressing — later-round packets arrive
    //!   early and are absorbed as unexpected records — so recovery
    //!   overlaps the rest of the round and the effective stall is ~5×
    //!   smaller. The penalty separates message-frugal trees (`2(n−1)`
    //!   messages) from message-rich dissemination (`n·(r−1)·log_r n`)
    //!   only on very large lossy fabrics, where the message-count gap
    //!   overwhelms the stall-fraction gap.
    //! * **skew** — barriers cannot complete before the last arrival, so
    //!   start skew adds on; it is the same additive term for every
    //!   candidate and never flips a ranking (kept for honest absolute
    //!   predictions).
    //!
    //! The `repro advisor` study replays the advisor's scenario space in
    //! simulation and gates the pick's measured regret against
    //! [`super::ADVISOR_REGRET_TOLERANCE`].

    use super::CostModel;
    use crate::schedule::{dissemination, pe, Descriptor};
    use gmsim_gm::Payload;

    /// Where the schedule interpreter runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Placement {
        /// NIC-resident firmware extension (the paper's contribution).
        Nic,
        /// Host-level baseline over plain GM sends/receives.
        Host,
    }

    /// The situation to recommend for. Topology tier is implied by `n`
    /// (single crossbar ≤ 16 hosts, two-level Clos ≤ 1024, then
    /// three-level), exactly as the [`CostModel`] hop form models it.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Scenario {
        /// Number of participating processes.
        pub n: usize,
        /// Data each rank contributes ([`Payload::EMPTY`] for a pure
        /// barrier; non-empty scenarios are allreduce-style synchronizing
        /// data exchanges).
        pub payload: Payload,
        /// Per-packet drop probability of the fabric.
        pub fault_rate: f64,
        /// Worst-case start skew between participants (µs).
        pub skew_us: f64,
    }

    impl Scenario {
        /// A fault-free, skew-free pure barrier over `n` processes.
        pub fn barrier(n: usize) -> Self {
            Scenario {
                n,
                payload: Payload::EMPTY,
                fault_rate: 0.0,
                skew_us: 0.0,
            }
        }

        /// Attach per-rank data (turns the scenario into an allreduce).
        #[must_use]
        pub fn with_payload(mut self, payload: Payload) -> Self {
            self.payload = payload;
            self
        }

        /// Set the fabric drop probability.
        #[must_use]
        pub fn with_faults(mut self, rate: f64) -> Self {
            self.fault_rate = rate;
            self
        }

        /// Set the worst-case start skew.
        #[must_use]
        pub fn with_skew(mut self, skew_us: f64) -> Self {
            self.skew_us = skew_us;
            self
        }
    }

    /// One scored (placement, algorithm) candidate.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Candidate {
        /// NIC or host interpreter.
        pub placement: Placement,
        /// The algorithm and its parameter.
        pub descriptor: Descriptor,
        /// Predicted latency under the scenario (µs).
        pub predicted_us: f64,
    }

    impl Candidate {
        /// Stable display name, matching the BENCH_advisor row labels.
        pub fn name(&self) -> String {
            let side = match self.placement {
                Placement::Nic => "nic",
                Placement::Host => "host",
            };
            match self.descriptor {
                Descriptor::Pe => format!("{side}-pe"),
                Descriptor::Gb { dim } => format!("{side}-gb{dim}"),
                Descriptor::Dissemination { radix } => format!("{side}-dissem{radix}"),
                Descriptor::Allreduce { dim, .. } => format!("{side}-allreduce{dim}"),
                ref other => format!("{side}-{other:?}"),
            }
        }
    }

    /// The advisor's output: every candidate, cheapest first.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Recommendation {
        /// All scored candidates, sorted by ascending predicted latency.
        pub ranked: Vec<Candidate>,
    }

    impl Recommendation {
        /// The recommended candidate.
        pub fn best(&self) -> &Candidate {
            &self.ranked[0]
        }
    }

    /// Tree dimensions the advisor considers for GB (and allreduce).
    pub const GB_DIMS: [usize; 3] = [2, 4, 8];

    /// The arity the GB pipeline forms are calibrated at (the scaling
    /// study's `dim = 8`). The advisor predicts every GB candidate from
    /// this form: measured GB latency is nearly *flat* in the tree
    /// dimension — deep binary trees serialize more levels while wide
    /// trees absorb more children per level, and under pipelining the two
    /// effects cancel — whereas the raw form's `dim − 1` per-round factor
    /// would wrongly reward low arities by 2–4×.
    pub const GB_PIPELINE_DIM: usize = 8;

    /// Simulation-calibrated arity correction on the saturated GB
    /// pipeline cycle (stable across 8–256 nodes to within a few
    /// percent): binary trees pay ~10% over the `dim = 8` cycle for the
    /// extra serialized depth, `dim = 4` undercuts it by ~6%.
    fn gb_arity_correction(dim: usize) -> f64 {
        match dim {
            0..=2 => 1.10,
            3..=5 => 0.94,
            _ => 1.0,
        }
    }

    /// Simulation-calibrated fraction of the base RTO one dropped packet
    /// stalls the collective. Tree schedules (GB, and the data-carrying
    /// tree collectives) serialize through the dropped edge: nothing
    /// downstream can proceed until the retransmission lands, so a drop
    /// costs essentially the full timeout. Exchange schedules (PE,
    /// dissemination, scan) leave every other rank free to run ahead —
    /// their later-round packets are absorbed as unexpected records — so
    /// only the tail of the stalled rank's chain waits and the measured
    /// effective stall is ~0.2 RTO.
    fn drop_stall_fraction(descriptor: &Descriptor) -> f64 {
        match descriptor {
            Descriptor::Pe | Descriptor::Dissemination { .. } | Descriptor::Scan { .. } => 0.2,
            _ => 1.0,
        }
    }

    /// Simulation-calibrated incast surcharge (µs) for payload-carrying
    /// trees. A `dim`-ary gather parent absorbs `dim` payload worms that
    /// serialize on its ingress path, and on the shared Clos uplinks the
    /// contention compounds — none of which the latency-vs-size forms
    /// model, so they increasingly *under*-charge high arity as `n`
    /// grows: at 4096 nodes the uncorrected form ranks the 8-ary
    /// allreduce cheapest where measurement has it 6× slower than
    /// binary. The measured fault-free gap fits `(dim−1)² × levels`,
    /// linear in payload bytes, with a per-tier scale: lost in the noise
    /// through 64 nodes, ≈18 µs per unit (at 4 KiB) on the two-level
    /// Clos (calibrated to the measured arity crossover — 4-ary still
    /// ahead at 256 nodes, binary by 1024), ≈60 µs once worms cross the
    /// third tier.
    fn payload_incast_us(n: usize, dim: usize, bytes: u64) -> f64 {
        let scale = match n {
            0..=127 => return 0.0,
            128..=2047 => 18.0,
            _ => 60.0,
        };
        let levels = if dim >= 2 {
            CostModel::kary_rounds(n, dim).len()
        } else {
            // Degenerate chain "tree": one level per non-root rank.
            n.saturating_sub(1)
        };
        let fan_in = dim.saturating_sub(1) as f64;
        fan_in * fan_in * levels as f64 * scale * (bytes as f64 / 4096.0)
    }

    /// Dissemination radixes the advisor considers.
    pub const DISSEMINATION_RADIXES: [usize; 3] = [2, 3, 4];

    /// The candidate space for `scenario`. Pure barriers rank PE, GB and
    /// dissemination on both placements; payload-carrying scenarios rank
    /// NIC allreduce trees (the payload forms model the NIC data path —
    /// there is no host-side payload form to rank against).
    pub fn candidates(scenario: &Scenario) -> Vec<(Placement, Descriptor)> {
        let mut out = Vec::new();
        if scenario.payload.bytes.get() > 0 {
            for dim in GB_DIMS {
                out.push((
                    Placement::Nic,
                    Descriptor::allreduce(gmsim_gm::ReduceOp::Sum, dim)
                        .with_payload(scenario.payload),
                ));
            }
            return out;
        }
        for placement in [Placement::Nic, Placement::Host] {
            out.push((placement, Descriptor::pe()));
            for dim in GB_DIMS {
                out.push((placement, Descriptor::gb(dim)));
            }
            for radix in DISSEMINATION_RADIXES {
                out.push((placement, Descriptor::dissemination_radix(radix)));
            }
        }
        out
    }

    /// Total wire messages one collective moves across all ranks — the
    /// fault-exposure surface. Co-located ranks still count: the advisor
    /// assumes the one-process-per-node placement its study measures.
    pub fn total_messages(descriptor: &Descriptor, n: usize) -> usize {
        match *descriptor {
            Descriptor::Pe => (0..n)
                .map(|r| {
                    pe::schedule(r, n)
                        .iter()
                        .filter(|s| !matches!(s, pe::Step::RecvFrom(_)))
                        .count()
                })
                .sum(),
            Descriptor::Dissemination { radix } => {
                // Every rank sends the same (k, j) distance set.
                n * dissemination::schedule(0, n, radix)
                    .iter()
                    .filter(|s| matches!(s, pe::Step::SendTo(_)))
                    .count()
            }
            // One gather up and one broadcast down per non-root rank.
            Descriptor::Gb { .. } => 2 * n.saturating_sub(1),
            Descriptor::Allreduce { payload, .. } => {
                2 * n.saturating_sub(1) * payload.segments().get() as usize
            }
            Descriptor::Bcast { payload, .. } | Descriptor::Reduce { payload, .. } => {
                n.saturating_sub(1) * payload.segments().get() as usize
            }
            Descriptor::Scan { payload, .. } => {
                (0..n)
                    .map(|r| {
                        crate::schedule::scan::schedule(r, n)
                            .iter()
                            .filter(|s| matches!(s, pe::Step::SendTo(_)))
                            .count()
                    })
                    .sum::<usize>()
                    * payload.segments().get() as usize
            }
        }
    }

    /// Predicted latency of one candidate under `scenario` (µs): the
    /// scale-aware base form plus the fault and skew penalties. GB
    /// candidates are predicted from the pipeline form at its calibration
    /// arity ([`GB_PIPELINE_DIM`]) with the measured arity correction —
    /// evaluating the raw form at `dim = 2` or `4` leaves its calibrated
    /// domain and under-predicts the simulation by 2–4×.
    ///
    /// # Panics
    /// On host-placement payload collectives (no host-side payload form
    /// exists); [`candidates`] never produces those pairings.
    pub fn predict(
        model: &CostModel,
        scenario: &Scenario,
        placement: Placement,
        descriptor: &Descriptor,
    ) -> f64 {
        let n = scenario.n;
        let base = match (placement, *descriptor) {
            (Placement::Nic, Descriptor::Pe) => model.nic_pe_us(n),
            (Placement::Host, Descriptor::Pe) => model.host_pe_us(n),
            (Placement::Nic, Descriptor::Gb { dim }) => {
                gb_arity_correction(dim) * model.nic_gb_us(n, GB_PIPELINE_DIM)
            }
            (Placement::Host, Descriptor::Gb { dim }) => {
                gb_arity_correction(dim) * model.host_gb_us(n, GB_PIPELINE_DIM)
            }
            (Placement::Nic, Descriptor::Dissemination { radix }) => {
                model.nic_dissemination_radix_us(n, radix)
            }
            (Placement::Host, Descriptor::Dissemination { radix }) => {
                model.host_dissemination_radix_us(n, radix)
            }
            (Placement::Nic, Descriptor::Allreduce { dim, payload, .. }) => {
                model.nic_allreduce_us(n, dim, payload)
                    + payload_incast_us(n, dim, payload.bytes.get())
            }
            (Placement::Nic, Descriptor::Bcast { dim, payload }) => {
                model.nic_bcast_us(n, dim, payload)
            }
            (Placement::Nic, Descriptor::Reduce { dim, payload, .. }) => {
                model.nic_reduce_us(n, dim, payload)
                    + payload_incast_us(n, dim, payload.bytes.get())
            }
            (Placement::Nic, Descriptor::Scan { payload, .. }) => model.nic_scan_us(n, payload),
            (Placement::Host, other) => {
                unreachable!("no host-side analytic form for {other:?}")
            }
        };
        let fault_penalty = scenario.fault_rate
            * total_messages(descriptor, n) as f64
            * model.retransmit_us
            * drop_stall_fraction(descriptor);
        base + fault_penalty + scenario.skew_us
    }

    /// Rank the whole candidate space for `scenario`, cheapest first.
    pub fn recommend(model: &CostModel, scenario: &Scenario) -> Recommendation {
        let mut ranked: Vec<Candidate> = candidates(scenario)
            .into_iter()
            .map(|(placement, descriptor)| Candidate {
                placement,
                descriptor,
                predicted_us: predict(model, scenario, placement, &descriptor),
            })
            .collect();
        ranked.sort_by(|a, b| a.predicted_us.total_cmp(&b.predicted_us));
        Recommendation { ranked }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Descriptor;
    use gmsim_gm::Segments;
    use gmsim_lanai::NicModel;

    fn model_43() -> CostModel {
        CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3))
    }

    #[test]
    fn rounds_is_ceil_log2() {
        assert_eq!(CostModel::rounds(1), 0);
        assert_eq!(CostModel::rounds(2), 1);
        assert_eq!(CostModel::rounds(3), 2);
        assert_eq!(CostModel::rounds(16), 4);
        assert_eq!(CostModel::rounds(17), 5);
    }

    #[test]
    fn derived_terms_near_design_calibration() {
        let m = model_43();
        assert!((7.5..8.5).contains(&m.send_us), "send={}", m.send_us);
        assert!((10.5..12.5).contains(&m.sdma_us), "sdma={}", m.sdma_us);
        assert!(
            (0.3..1.0).contains(&m.network_us),
            "network={}",
            m.network_us
        );
        assert!((10.0..11.5).contains(&m.recv_us), "recv={}", m.recv_us);
        assert!((7.0..8.5).contains(&m.rdma_us), "rdma={}", m.rdma_us);
        assert!((6.5..7.1).contains(&m.hrecv_us), "hrecv={}", m.hrecv_us);
    }

    #[test]
    fn sixteen_node_predictions_match_paper_band() {
        let m = model_43();
        let host = m.host_barrier_us(16);
        let nic = m.nic_barrier_us(16);
        // Paper: host-PE(16) ≈ 1.78 × 102.14 ≈ 182 µs; NIC-PE(16) = 102.14.
        assert!((170.0..195.0).contains(&host), "host={host}");
        assert!((94.0..112.0).contains(&nic), "nic={nic}");
        let f = m.improvement(16);
        assert!((1.6..2.0).contains(&f), "improvement={f}");
    }

    #[test]
    fn improvement_grows_with_n() {
        let m = model_43();
        let f4 = m.improvement(4);
        let f16 = m.improvement(16);
        let f256 = m.improvement(256);
        assert!(f4 < f16 && f16 < f256, "{f4} {f16} {f256}");
    }

    #[test]
    fn improvement_grows_with_host_overhead() {
        // §2.2: an MPI-like layer increases Send/HRecv and the factor.
        let base = model_43();
        let mpi = CostModel::from_config(
            &GmConfig::paper_host(NicModel::LANAI_4_3).with_layer_overhead(2.0),
        );
        assert!(mpi.improvement(16) > base.improvement(16));
    }

    #[test]
    fn faster_nic_lowers_both_latencies() {
        let m43 = model_43();
        let m72 = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_7_2));
        assert!(m72.host_barrier_us(8) < m43.host_barrier_us(8));
        assert!(m72.nic_barrier_us(8) < m43.nic_barrier_us(8));
        // Paper: 8-node LANai 7.2 factor 1.83 > LANai 4.3 factor 1.66.
        assert!(m72.improvement(8) > m43.improvement(8));
    }

    #[test]
    fn paper_form_is_a_lower_bound() {
        let m = model_43();
        for n in [2usize, 4, 8, 16] {
            assert!(m.nic_barrier_us_paper_form(n) <= m.nic_barrier_us(n));
        }
    }

    #[test]
    fn scaled_forms_collapse_to_paper_forms_on_one_crossbar() {
        // Up to 16 nodes there is no Clos and no cross-leaf surcharge:
        // the scale-aware predictions must equal Eqs. 1–2 exactly.
        let m = model_43();
        for n in [2usize, 4, 8, 16] {
            assert_eq!(m.nic_pe_us(n), m.nic_barrier_us(n));
            assert_eq!(m.host_pe_us(n), m.host_barrier_us(n));
        }
    }

    #[test]
    fn cross_leaf_surcharge_kicks_in_past_sixteen() {
        let m = model_43();
        // n=32 has 5 PE rounds, distances 1,2,4 intra-leaf and 8,16
        // cross-leaf: exactly two surcharges over the flat Eq. 2.
        let flat = m.nic_barrier_us(32);
        let scaled = m.nic_pe_us(32);
        assert!(
            (scaled - flat - 2.0 * m.cross_extra_us).abs() < 1e-9,
            "scaled={scaled} flat={flat} extra={}",
            m.cross_extra_us
        );
    }

    #[test]
    fn cross_pod_surcharge_kicks_in_past_one_thousand_twenty_four() {
        let m = model_43();
        // n=2048 has 11 PE rounds: distances 1..=4 intra-leaf, 8..=32
        // cross-leaf (3 surcharges), 64..=1024 cross-pod (5 double
        // surcharges).
        let flat = m.nic_barrier_us(2048);
        let scaled = m.nic_pe_us(2048);
        let expect = 3.0 * m.cross_extra_us + 5.0 * 2.0 * m.cross_extra_us;
        assert!(
            (scaled - flat - expect).abs() < 1e-9,
            "scaled={scaled} flat={flat} expect={expect}"
        );
        // At the two-level boundary the pod surcharge must NOT apply.
        let b1024 = m.nic_pe_us(1024) - m.nic_barrier_us(1024);
        assert!(
            (b1024 - 7.0 * m.cross_extra_us).abs() < 1e-9,
            "1024 nodes stay two-level: {b1024}"
        );
    }

    #[test]
    fn dissemination_matches_pe_at_powers_of_two() {
        let m = model_43();
        for n in [32usize, 64, 256, 1024] {
            assert_eq!(m.nic_dissemination_us(n), m.nic_pe_us(n));
            assert_eq!(m.host_dissemination_us(n), m.host_pe_us(n));
        }
    }

    #[test]
    fn radix_two_forms_are_the_fixed_radix_forms() {
        // The radix-aware generalization must delegate bit-exactly: the
        // scale study's model gates and the golden comparisons both lean
        // on the historical radix-2 values.
        let m = model_43();
        for n in [2usize, 3, 5, 16, 33, 100, 1024, 4096] {
            assert_eq!(
                m.nic_dissemination_radix_us(n, 2),
                m.nic_dissemination_us(n)
            );
            assert_eq!(
                m.host_dissemination_radix_us(n, 2),
                m.host_dissemination_us(n)
            );
        }
    }

    #[test]
    fn higher_radix_trades_rounds_for_arrivals() {
        let m = model_43();
        for n in [64usize, 256, 1024] {
            // Radix 4 halves the dependent rounds of radix 2 at powers of
            // four, paying 3 arrivals per round instead of 1: strictly
            // fewer wire hops on the critical path, more NIC work.
            let r2 = m.nic_dissemination_radix_us(n, 2);
            let r4 = m.nic_dissemination_radix_us(n, 4);
            assert!(r2.is_finite() && r4.is_finite());
            assert!(r4 > 0.0 && r2 > 0.0);
            // On the host the per-arrival round trip dominates, so higher
            // radix must never win there.
            assert!(
                m.host_dissemination_radix_us(n, 4) > m.host_dissemination_radix_us(n, 2),
                "n={n}"
            );
        }
    }

    #[test]
    fn advisor_prefers_nic_over_host_everywhere() {
        let m = model_43();
        for n in [8usize, 64, 1024] {
            let rec = advisor::recommend(&m, &advisor::Scenario::barrier(n));
            assert_eq!(rec.best().placement, advisor::Placement::Nic, "n={n}");
            // The ranking is sorted ascending.
            for w in rec.ranked.windows(2) {
                assert!(w[0].predicted_us <= w[1].predicted_us);
            }
        }
    }

    #[test]
    fn advisor_fault_penalty_favors_message_frugal_trees_at_scale() {
        let m = model_43();
        // Exchange schedules ride out drops ~5× cheaper per message than
        // trees, so the tree's 2(n−1)-vs-0.2·n·log2 n exposure advantage
        // only materializes past n = 1024 (log2 n > 10). At 4096 nodes a
        // lossy fabric must flip the recommendation to a GB tree...
        let lossy = advisor::Scenario::barrier(4096).with_faults(0.01);
        let rec = advisor::recommend(&m, &lossy);
        assert!(
            matches!(rec.best().descriptor, Descriptor::Gb { .. }),
            "lossy best = {}",
            rec.best().name()
        );
        // ...while at 256 nodes the same drop rate keeps PE/dissemination
        // ahead (measured: nic-pe and nic-dissem2 stay the cheapest under
        // faults there).
        let mid = advisor::recommend(&m, &advisor::Scenario::barrier(256).with_faults(0.01));
        assert!(
            matches!(
                mid.best().descriptor,
                Descriptor::Pe | Descriptor::Dissemination { .. }
            ),
            "256-node lossy best = {}",
            mid.best().name()
        );
        // And the penalty is monotone: the lossy winner predicts no better
        // than the fault-free winner.
        let clean = advisor::recommend(&m, &advisor::Scenario::barrier(4096));
        assert!(rec.best().predicted_us >= clean.best().predicted_us);
    }

    #[test]
    fn advisor_payload_scenarios_rank_allreduce_trees() {
        let m = model_43();
        let sc = advisor::Scenario::barrier(64).with_payload(Payload::for_size(4096));
        let rec = advisor::recommend(&m, &sc);
        assert_eq!(rec.ranked.len(), advisor::GB_DIMS.len());
        for c in &rec.ranked {
            assert_eq!(c.placement, advisor::Placement::Nic);
            assert!(matches!(c.descriptor, Descriptor::Allreduce { .. }));
        }
    }

    #[test]
    fn advisor_payload_trees_pay_for_incast_at_scale() {
        let m = model_43();
        // At 64 nodes pipelining still favors the wider tree...
        let small = advisor::Scenario::barrier(64).with_payload(Payload::for_size(4096));
        let rec = advisor::recommend(&m, &small);
        assert!(
            matches!(rec.best().descriptor, Descriptor::Allreduce { dim: 4, .. }),
            "{rec:?}"
        );
        // ...but on the three-tier fabric the 8-ary gather's incast is
        // ruinous (measured 6× binary) and the binary tree must win.
        let big = advisor::Scenario::barrier(4096).with_payload(Payload::for_size(4096));
        let rec = advisor::recommend(&m, &big);
        assert!(
            matches!(rec.best().descriptor, Descriptor::Allreduce { dim: 2, .. }),
            "{rec:?}"
        );
    }

    #[test]
    fn advisor_total_messages_counts() {
        use advisor::total_messages;
        // GB: one gather up + one broadcast down per non-root rank.
        assert_eq!(total_messages(&Descriptor::gb(4), 16), 30);
        // Radix-2 dissemination: n sends per round, ceil(log2 n) rounds.
        assert_eq!(total_messages(&Descriptor::dissemination(), 16), 64);
        // Radix-4 over 16 ranks: 2 rounds × 3 offsets × 16 ranks.
        assert_eq!(total_messages(&Descriptor::dissemination_radix(4), 16), 96);
        // PE at a power of two: n·log2 n exchange sends.
        assert_eq!(total_messages(&Descriptor::pe(), 16), 64);
        // Skew is additive and identical across candidates.
        let model = model_43();
        let base = advisor::predict(
            &model,
            &advisor::Scenario::barrier(32),
            advisor::Placement::Nic,
            &Descriptor::pe(),
        );
        let skewed = advisor::predict(
            &model,
            &advisor::Scenario::barrier(32).with_skew(50.0),
            advisor::Placement::Nic,
            &Descriptor::pe(),
        );
        assert!((skewed - base - 50.0).abs() < 1e-12);
    }

    #[test]
    fn gb_depth_of_heap_trees() {
        assert_eq!(CostModel::gb_depth(1, 8), 0);
        assert_eq!(CostModel::gb_depth(2, 8), 1);
        assert_eq!(CostModel::gb_depth(9, 8), 1);
        assert_eq!(CostModel::gb_depth(10, 8), 2);
        assert_eq!(CostModel::gb_depth(32, 8), 2);
        assert_eq!(CostModel::gb_depth(128, 8), 3);
        assert_eq!(CostModel::gb_depth(1024, 8), 4);
        // Chain when dim = 1.
        assert_eq!(CostModel::gb_depth(5, 1), 4);
    }

    #[test]
    fn nic_beats_host_at_scale_for_all_models() {
        let m = model_43();
        for n in [32usize, 128, 1024] {
            assert!(m.nic_pe_us(n) < m.host_pe_us(n));
            assert!(m.nic_gb_us(n, 8) < m.host_gb_us(n, 8));
            assert!(m.nic_dissemination_us(n) < m.host_dissemination_us(n));
        }
    }

    fn payload_quad(m: &CostModel, n: usize, p: Payload) -> [f64; 4] {
        [
            m.nic_bcast_us(n, 2, p),
            m.nic_reduce_us(n, 2, p),
            m.nic_allreduce_us(n, 2, p),
            m.nic_scan_us(n, p),
        ]
    }

    #[test]
    fn payload_forms_monotone_in_bytes() {
        let m = model_43();
        for n in [4usize, 16, 64, 256, 1024] {
            let mut prev = [0.0f64; 4];
            for bytes in [0u64, 1, 1024, 4096, 16384, 65536, 1 << 20] {
                let cur = payload_quad(&m, n, Payload::for_size(bytes));
                for (which, (c, p)) in cur.iter().zip(prev.iter()).enumerate() {
                    assert!(
                        c >= p,
                        "form {which} shrank at n={n} bytes={bytes}: {c} < {p}"
                    );
                }
                prev = cur;
            }
        }
    }

    #[test]
    fn one_segment_payloads_ignore_segmentation_granularity() {
        // At or below one segment the pipelined constructor is the same
        // single worm as the eager one, and the model must agree.
        let m = model_43();
        for bytes in [1u64, 512, 4096] {
            let eager = Payload::eager(bytes);
            let piped = Payload::pipelined(bytes, 4096);
            assert_eq!(piped.segments(), Segments::ONE);
            assert_eq!(payload_quad(&m, 64, eager), payload_quad(&m, 64, piped));
        }
    }

    #[test]
    fn zero_payload_matches_for_size_of_zero() {
        // The plain barrier is the zero-byte payload, however spelled.
        let m = model_43();
        assert_eq!(
            payload_quad(&m, 256, Payload::EMPTY),
            payload_quad(&m, 256, Payload::for_size(0))
        );
    }

    #[test]
    fn bcast_link_contention_saturates() {
        // One crossbar (≤16 nodes at dim=2): only the parent egress is
        // shared, factor = dim regardless of segmentation (the n/8 cap).
        assert_eq!(CostModel::bcast_link_factor(2, 2, 1.0), 1.0);
        assert_eq!(CostModel::bcast_link_factor(16, 2, 1.0), 2.0);
        assert_eq!(CostModel::bcast_link_factor(16, 2, 16.0), 2.0);
        // Deeper trees add trunk sharing, and segmentation interleaves
        // streams on the trunks — but never past the stream-count cap.
        let eager = CostModel::bcast_link_factor(256, 2, 1.0);
        let piped = CostModel::bcast_link_factor(256, 2, 16.0);
        assert!(eager > 2.0 && piped > eager);
        assert!(CostModel::bcast_link_factor(256, 2, 4096.0) <= 32.0);
    }

    #[test]
    fn large_payloads_dwarf_the_zero_byte_period() {
        // At 64 KiB the data movement dominates every schedule.
        let m = model_43();
        let small = payload_quad(&m, 256, Payload::EMPTY);
        let large = payload_quad(&m, 256, Payload::for_size(65536));
        for (s, l) in small.iter().zip(large.iter()) {
            assert!(*l > 3.0 * s, "payload should dominate: {l} vs {s}");
        }
    }
}
