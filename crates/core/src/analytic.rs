//! The paper's analytic timing model (§2.2, Equations 1–3).
//!
//! * Eq. 1: `T_host = log2 N × (Send + SDMA + Network + Recv + RDMA + HRecv)`
//! * Eq. 2: `T_nic  = Send + log2 N × (Network + Recv) + RDMA + HRecv`
//! * Eq. 3: factor of improvement = `T_host / T_nic`
//!
//! The component terms are *derived from the simulator's configuration* —
//! firmware cycle counts divided by the NIC clock, plus the host overheads —
//! so the analytic prediction and the simulation share one source of truth.
//! The paper folds all NIC-side per-step barrier processing into its *Recv*
//! term; we expose it separately as [`CostModel::nic_step_us`] and add it to
//! the per-step NIC cost, which is what the measured prototype actually
//! pays (§6 discusses exactly this overhead for the GB case).

use crate::nic::BarrierCosts;
use gmsim_gm::{ExtPacket, GmConfig};
use gmsim_myrinet::{wire_size, LinkSpec, TopologyBuilder};

/// Relative tolerance of the PE/dissemination scaling forms against
/// simulation, across 32–1024 nodes and both NIC generations (worst
/// observed error ≈ 3.5%).
pub const PE_MODEL_TOLERANCE: f64 = 0.10;

/// Relative tolerance of the calibrated GB pipeline forms against
/// simulation across the same grid at `dim = 8` (worst observed error
/// ≈ 11%; the forms are fits, not first-principles derivations).
pub const GB_MODEL_TOLERANCE: f64 = 0.20;

/// Component costs in microseconds, as in Figure 2.
///
/// ```
/// use gmsim_gm::GmConfig;
/// use gmsim_lanai::NicModel;
/// use nic_barrier::CostModel;
///
/// let m = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
/// // Eq. 3 predicts a factor near the paper's published 1.78x at 16 nodes.
/// assert!((m.improvement(16) - 1.78).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Host posts a token until the NIC can detect it.
    pub send_us: f64,
    /// SDMA pickup + payload staging on the NIC.
    pub sdma_us: f64,
    /// Wire time: switch fall-through + propagation + serialization.
    pub network_us: f64,
    /// NIC reception handling of one data packet (host path).
    pub recv_us: f64,
    /// NIC reception handling of one NIC-terminated barrier packet —
    /// cheaper than the data path (no receive-token lookup, no RDMA prep).
    pub nic_recv_us: f64,
    /// NIC→host delivery of one event.
    pub rdma_us: f64,
    /// Host processing of one returned event.
    pub hrecv_us: f64,
    /// Firmware cost of one NIC-resident barrier step (PE), folded into
    /// *Recv* by the paper's Eq. 2 but paid by the real firmware.
    pub nic_step_us: f64,
    /// Extra wire cost of a cross-leaf hop in the two-level Clos fabric
    /// that clusters beyond 16 hosts use: two additional switch
    /// fall-throughs plus two additional link propagations (wormhole
    /// routing pays serialization only once).
    pub cross_extra_us: f64,
    /// Firmware cost of processing one GB tree collective token.
    pub gb_token_us: f64,
    /// Firmware cost of absorbing one gather arrival (GB up phase).
    pub gb_gather_us: f64,
    /// Firmware cost of one child broadcast send (GB down phase).
    pub gb_child_us: f64,
}

impl CostModel {
    /// Derive the model from a cluster configuration (single-crossbar
    /// topology assumed, as in the paper's testbeds).
    pub fn from_config(cfg: &GmConfig) -> Self {
        let clock = cfg.nic.clock;
        let us = |cycles: u64| clock.cycles(cycles).as_us_f64();
        let costs = cfg.nic.costs;
        let bc = BarrierCosts::GM_1_2_3;
        // Wire: NIC→switch→NIC with GM framing on a small barrier packet.
        let link = LinkSpec::MYRINET_1280;
        let bytes = wire_size(ExtPacket::WIRE_BYTES, 1);
        let network = TopologyBuilder::DEFAULT_SWITCH_LATENCY.as_us_f64()
            + 2.0 * link.propagation.as_us_f64()
            + link.serialize(bytes).as_us_f64();
        // Small-message DMA byte time is sub-microsecond; fold it in.
        let dma_us = |b: usize| b as f64 / cfg.nic.dma_bytes_per_ns / 1_000.0;
        CostModel {
            send_us: cfg.host_send_overhead.as_us_f64(),
            sdma_us: us(costs.sdma_cycles + costs.send_cycles) + dma_us(8),
            network_us: network,
            recv_us: us(costs.recv_cycles + costs.ack_tx_cycles),
            nic_recv_us: us(costs.ext_recv_cycles + costs.ack_tx_cycles),
            rdma_us: us(costs.rdma_cycles) + dma_us(16),
            hrecv_us: cfg.host_recv_overhead.as_us_f64(),
            nic_step_us: us(bc.pe_send_cycles + bc.pe_match_cycles + bc.record_cycles),
            cross_extra_us: 2.0 * TopologyBuilder::DEFAULT_SWITCH_LATENCY.as_us_f64()
                + 2.0 * link.propagation.as_us_f64(),
            gb_token_us: us(bc.gb_token_cycles),
            gb_gather_us: us(bc.gb_gather_cycles),
            gb_child_us: us(bc.gb_child_cycles),
        }
    }

    /// `ceil(log2 n)` rounds of the PE algorithm.
    pub fn rounds(n: usize) -> u32 {
        assert!(n >= 1);
        (n as f64).log2().ceil() as u32
    }

    /// Equation 1: predicted host-based PE barrier latency (µs).
    pub fn host_barrier_us(&self, n: usize) -> f64 {
        let step = self.send_us
            + self.sdma_us
            + self.network_us
            + self.recv_us
            + self.rdma_us
            + self.hrecv_us;
        Self::rounds(n) as f64 * step
    }

    /// Equation 2 (with the explicit firmware step term): predicted
    /// NIC-based PE barrier latency (µs).
    pub fn nic_barrier_us(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.nic_recv_us + self.nic_step_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 2 exactly as printed in the paper (no firmware-step term;
    /// the paper folds step processing into its *Recv*).
    pub fn nic_barrier_us_paper_form(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.recv_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 3: predicted factor of improvement.
    pub fn improvement(&self, n: usize) -> f64 {
        self.host_barrier_us(n) / self.nic_barrier_us(n)
    }

    // ---- Scale-aware forms (N beyond the paper's 16-node testbed) ----
    //
    // These extend Eqs. 1–2 to the two-level Clos fabric that
    // `TopologyBuilder::for_cluster` builds past 16 hosts: a round whose
    // partner lives in another 8-host leaf pays `cross_extra_us` on the
    // wire, everything else is unchanged. The BENCH_scale study
    // cross-checks every simulated point against these within stated
    // tolerances.

    /// Wire cost of one hop between endpoints `dist` ranks apart in an
    /// `n`-node cluster: the single-crossbar term, plus the cross-leaf
    /// surcharge once the cluster is a Clos and the partner cannot share a
    /// leaf, plus a second surcharge once the cluster is a three-level
    /// Clos (`n > 1024`) and the partner lives in another 64-host pod —
    /// the leaf→spine→core→spine→leaf route pays two more fall-throughs
    /// and two more propagations than the in-pod leaf→spine→leaf route.
    fn hop_us(&self, n: usize, dist: usize) -> f64 {
        let pod_hosts = TopologyBuilder::CLOS_LEAF_HOSTS * TopologyBuilder::CLOS_LEAF_HOSTS;
        let clos = n > TopologyBuilder::MAX_SINGLE_SWITCH_HOSTS;
        let clos3 = n > TopologyBuilder::MAX_TWO_LEVEL_HOSTS;
        if clos3 && dist >= pod_hosts {
            self.network_us + 2.0 * self.cross_extra_us
        } else if clos && dist >= TopologyBuilder::CLOS_LEAF_HOSTS {
            self.network_us + self.cross_extra_us
        } else {
            self.network_us
        }
    }

    /// Scale-aware Eq. 2: NIC-based PE latency on the standard fabric.
    /// Round `k`'s partner is `2^k` ranks away, so the first
    /// `log2(leaf size)` rounds stay intra-leaf. Equals
    /// [`CostModel::nic_barrier_us`] for `n <= 16`.
    pub fn nic_pe_us(&self, n: usize) -> f64 {
        let per_round: f64 = (0..Self::rounds(n))
            .map(|k| self.hop_us(n, 1usize << k) + self.nic_recv_us + self.nic_step_us)
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Scale-aware Eq. 1: host-based PE latency on the standard fabric.
    pub fn host_pe_us(&self, n: usize) -> f64 {
        (0..Self::rounds(n))
            .map(|k| {
                self.send_us
                    + self.sdma_us
                    + self.hop_us(n, 1usize << k)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
            })
            .sum()
    }

    /// Scale-aware NIC dissemination latency. Same round structure as PE
    /// with round-`k` distance `2^k mod n`; at powers of two the two
    /// algorithms (and predictions) coincide.
    pub fn nic_dissemination_us(&self, n: usize) -> f64 {
        let per_round: f64 = (0..Self::rounds(n))
            .map(|k| self.hop_us(n, (1usize << k) % n) + self.nic_recv_us + self.nic_step_us)
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Scale-aware host dissemination latency.
    pub fn host_dissemination_us(&self, n: usize) -> f64 {
        (0..Self::rounds(n))
            .map(|k| {
                self.send_us
                    + self.sdma_us
                    + self.hop_us(n, (1usize << k) % n)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
            })
            .sum()
    }

    /// Depth of the `dim`-ary heap-shaped GB tree over `n` ranks: the
    /// level of the deepest rank, `n - 1`.
    pub fn gb_depth(n: usize, dim: usize) -> u32 {
        assert!(n >= 1 && dim >= 1);
        let mut rank = n - 1;
        let mut level = 0;
        while rank > 0 {
            rank = (rank - 1) / dim;
            level += 1;
        }
        level
    }

    /// NIC-based GB latency.
    ///
    /// Unlike PE, measured GB latency is *linear in `log2 n`* rather than
    /// stepping with tree depth: consecutive rounds pipeline through the
    /// tree, and each doubling of the cluster adds `dim - 1` gather
    /// absorptions plus child broadcast sends to the critical cycle
    /// (matching §6's observation that the tree dimension's impact is
    /// muted by pipelining). The fixed part is the tree token, which is
    /// far costlier than PE's. Calibrated for moderate arities (the
    /// scaling study's `dim = 8`); exact only to ~±10%.
    pub fn nic_gb_us(&self, n: usize, dim: usize) -> f64 {
        let per_child = (dim.saturating_sub(1)).max(1) as f64;
        self.send_us
            + self.gb_token_us
            + Self::rounds(n) as f64 * per_child * (self.gb_gather_us + self.gb_child_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Host-based GB latency: the same pipelined-round shape as
    /// [`CostModel::nic_gb_us`], but each per-child absorption goes
    /// through the NIC's full data-path receive handling. Calibrated for
    /// moderate arities; exact only to ~±15%.
    pub fn host_gb_us(&self, n: usize, dim: usize) -> f64 {
        let per_child = (dim.saturating_sub(1)).max(1) as f64;
        self.send_us
            + self.sdma_us
            + Self::rounds(n) as f64 * per_child * self.recv_us
            + self.rdma_us
            + self.hrecv_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmsim_lanai::NicModel;

    fn model_43() -> CostModel {
        CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3))
    }

    #[test]
    fn rounds_is_ceil_log2() {
        assert_eq!(CostModel::rounds(1), 0);
        assert_eq!(CostModel::rounds(2), 1);
        assert_eq!(CostModel::rounds(3), 2);
        assert_eq!(CostModel::rounds(16), 4);
        assert_eq!(CostModel::rounds(17), 5);
    }

    #[test]
    fn derived_terms_near_design_calibration() {
        let m = model_43();
        assert!((7.5..8.5).contains(&m.send_us), "send={}", m.send_us);
        assert!((10.5..12.5).contains(&m.sdma_us), "sdma={}", m.sdma_us);
        assert!(
            (0.3..1.0).contains(&m.network_us),
            "network={}",
            m.network_us
        );
        assert!((10.0..11.5).contains(&m.recv_us), "recv={}", m.recv_us);
        assert!((7.0..8.5).contains(&m.rdma_us), "rdma={}", m.rdma_us);
        assert!((6.5..7.1).contains(&m.hrecv_us), "hrecv={}", m.hrecv_us);
    }

    #[test]
    fn sixteen_node_predictions_match_paper_band() {
        let m = model_43();
        let host = m.host_barrier_us(16);
        let nic = m.nic_barrier_us(16);
        // Paper: host-PE(16) ≈ 1.78 × 102.14 ≈ 182 µs; NIC-PE(16) = 102.14.
        assert!((170.0..195.0).contains(&host), "host={host}");
        assert!((94.0..112.0).contains(&nic), "nic={nic}");
        let f = m.improvement(16);
        assert!((1.6..2.0).contains(&f), "improvement={f}");
    }

    #[test]
    fn improvement_grows_with_n() {
        let m = model_43();
        let f4 = m.improvement(4);
        let f16 = m.improvement(16);
        let f256 = m.improvement(256);
        assert!(f4 < f16 && f16 < f256, "{f4} {f16} {f256}");
    }

    #[test]
    fn improvement_grows_with_host_overhead() {
        // §2.2: an MPI-like layer increases Send/HRecv and the factor.
        let base = model_43();
        let mpi = CostModel::from_config(
            &GmConfig::paper_host(NicModel::LANAI_4_3).with_layer_overhead(2.0),
        );
        assert!(mpi.improvement(16) > base.improvement(16));
    }

    #[test]
    fn faster_nic_lowers_both_latencies() {
        let m43 = model_43();
        let m72 = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_7_2));
        assert!(m72.host_barrier_us(8) < m43.host_barrier_us(8));
        assert!(m72.nic_barrier_us(8) < m43.nic_barrier_us(8));
        // Paper: 8-node LANai 7.2 factor 1.83 > LANai 4.3 factor 1.66.
        assert!(m72.improvement(8) > m43.improvement(8));
    }

    #[test]
    fn paper_form_is_a_lower_bound() {
        let m = model_43();
        for n in [2usize, 4, 8, 16] {
            assert!(m.nic_barrier_us_paper_form(n) <= m.nic_barrier_us(n));
        }
    }

    #[test]
    fn scaled_forms_collapse_to_paper_forms_on_one_crossbar() {
        // Up to 16 nodes there is no Clos and no cross-leaf surcharge:
        // the scale-aware predictions must equal Eqs. 1–2 exactly.
        let m = model_43();
        for n in [2usize, 4, 8, 16] {
            assert_eq!(m.nic_pe_us(n), m.nic_barrier_us(n));
            assert_eq!(m.host_pe_us(n), m.host_barrier_us(n));
        }
    }

    #[test]
    fn cross_leaf_surcharge_kicks_in_past_sixteen() {
        let m = model_43();
        // n=32 has 5 PE rounds, distances 1,2,4 intra-leaf and 8,16
        // cross-leaf: exactly two surcharges over the flat Eq. 2.
        let flat = m.nic_barrier_us(32);
        let scaled = m.nic_pe_us(32);
        assert!(
            (scaled - flat - 2.0 * m.cross_extra_us).abs() < 1e-9,
            "scaled={scaled} flat={flat} extra={}",
            m.cross_extra_us
        );
    }

    #[test]
    fn cross_pod_surcharge_kicks_in_past_one_thousand_twenty_four() {
        let m = model_43();
        // n=2048 has 11 PE rounds: distances 1..=4 intra-leaf, 8..=32
        // cross-leaf (3 surcharges), 64..=1024 cross-pod (5 double
        // surcharges).
        let flat = m.nic_barrier_us(2048);
        let scaled = m.nic_pe_us(2048);
        let expect = 3.0 * m.cross_extra_us + 5.0 * 2.0 * m.cross_extra_us;
        assert!(
            (scaled - flat - expect).abs() < 1e-9,
            "scaled={scaled} flat={flat} expect={expect}"
        );
        // At the two-level boundary the pod surcharge must NOT apply.
        let b1024 = m.nic_pe_us(1024) - m.nic_barrier_us(1024);
        assert!(
            (b1024 - 7.0 * m.cross_extra_us).abs() < 1e-9,
            "1024 nodes stay two-level: {b1024}"
        );
    }

    #[test]
    fn dissemination_matches_pe_at_powers_of_two() {
        let m = model_43();
        for n in [32usize, 64, 256, 1024] {
            assert_eq!(m.nic_dissemination_us(n), m.nic_pe_us(n));
            assert_eq!(m.host_dissemination_us(n), m.host_pe_us(n));
        }
    }

    #[test]
    fn gb_depth_of_heap_trees() {
        assert_eq!(CostModel::gb_depth(1, 8), 0);
        assert_eq!(CostModel::gb_depth(2, 8), 1);
        assert_eq!(CostModel::gb_depth(9, 8), 1);
        assert_eq!(CostModel::gb_depth(10, 8), 2);
        assert_eq!(CostModel::gb_depth(32, 8), 2);
        assert_eq!(CostModel::gb_depth(128, 8), 3);
        assert_eq!(CostModel::gb_depth(1024, 8), 4);
        // Chain when dim = 1.
        assert_eq!(CostModel::gb_depth(5, 1), 4);
    }

    #[test]
    fn nic_beats_host_at_scale_for_all_models() {
        let m = model_43();
        for n in [32usize, 128, 1024] {
            assert!(m.nic_pe_us(n) < m.host_pe_us(n));
            assert!(m.nic_gb_us(n, 8) < m.host_gb_us(n, 8));
            assert!(m.nic_dissemination_us(n) < m.host_dissemination_us(n));
        }
    }
}
