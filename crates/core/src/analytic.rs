//! The paper's analytic timing model (§2.2, Equations 1–3).
//!
//! * Eq. 1: `T_host = log2 N × (Send + SDMA + Network + Recv + RDMA + HRecv)`
//! * Eq. 2: `T_nic  = Send + log2 N × (Network + Recv) + RDMA + HRecv`
//! * Eq. 3: factor of improvement = `T_host / T_nic`
//!
//! The component terms are *derived from the simulator's configuration* —
//! firmware cycle counts divided by the NIC clock, plus the host overheads —
//! so the analytic prediction and the simulation share one source of truth.
//! The paper folds all NIC-side per-step barrier processing into its *Recv*
//! term; we expose it separately as [`CostModel::nic_step_us`] and add it to
//! the per-step NIC cost, which is what the measured prototype actually
//! pays (§6 discusses exactly this overhead for the GB case).

use crate::nic::BarrierCosts;
use gmsim_gm::{ExtPacket, GmConfig};
use gmsim_myrinet::{wire_size, LinkSpec, TopologyBuilder};

/// Component costs in microseconds, as in Figure 2.
///
/// ```
/// use gmsim_gm::GmConfig;
/// use gmsim_lanai::NicModel;
/// use nic_barrier::CostModel;
///
/// let m = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
/// // Eq. 3 predicts a factor near the paper's published 1.78x at 16 nodes.
/// assert!((m.improvement(16) - 1.78).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Host posts a token until the NIC can detect it.
    pub send_us: f64,
    /// SDMA pickup + payload staging on the NIC.
    pub sdma_us: f64,
    /// Wire time: switch fall-through + propagation + serialization.
    pub network_us: f64,
    /// NIC reception handling of one data packet (host path).
    pub recv_us: f64,
    /// NIC reception handling of one NIC-terminated barrier packet —
    /// cheaper than the data path (no receive-token lookup, no RDMA prep).
    pub nic_recv_us: f64,
    /// NIC→host delivery of one event.
    pub rdma_us: f64,
    /// Host processing of one returned event.
    pub hrecv_us: f64,
    /// Firmware cost of one NIC-resident barrier step (PE), folded into
    /// *Recv* by the paper's Eq. 2 but paid by the real firmware.
    pub nic_step_us: f64,
}

impl CostModel {
    /// Derive the model from a cluster configuration (single-crossbar
    /// topology assumed, as in the paper's testbeds).
    pub fn from_config(cfg: &GmConfig) -> Self {
        let clock = cfg.nic.clock;
        let us = |cycles: u64| clock.cycles(cycles).as_us_f64();
        let costs = cfg.nic.costs;
        let bc = BarrierCosts::GM_1_2_3;
        // Wire: NIC→switch→NIC with GM framing on a small barrier packet.
        let link = LinkSpec::MYRINET_1280;
        let bytes = wire_size(ExtPacket::WIRE_BYTES, 1);
        let network = TopologyBuilder::DEFAULT_SWITCH_LATENCY.as_us_f64()
            + 2.0 * link.propagation.as_us_f64()
            + link.serialize(bytes).as_us_f64();
        // Small-message DMA byte time is sub-microsecond; fold it in.
        let dma_us = |b: usize| b as f64 / cfg.nic.dma_bytes_per_ns / 1_000.0;
        CostModel {
            send_us: cfg.host_send_overhead.as_us_f64(),
            sdma_us: us(costs.sdma_cycles + costs.send_cycles) + dma_us(8),
            network_us: network,
            recv_us: us(costs.recv_cycles + costs.ack_tx_cycles),
            nic_recv_us: us(costs.ext_recv_cycles + costs.ack_tx_cycles),
            rdma_us: us(costs.rdma_cycles) + dma_us(16),
            hrecv_us: cfg.host_recv_overhead.as_us_f64(),
            nic_step_us: us(bc.pe_send_cycles + bc.pe_match_cycles + bc.record_cycles),
        }
    }

    /// `ceil(log2 n)` rounds of the PE algorithm.
    pub fn rounds(n: usize) -> u32 {
        assert!(n >= 1);
        (n as f64).log2().ceil() as u32
    }

    /// Equation 1: predicted host-based PE barrier latency (µs).
    pub fn host_barrier_us(&self, n: usize) -> f64 {
        let step = self.send_us
            + self.sdma_us
            + self.network_us
            + self.recv_us
            + self.rdma_us
            + self.hrecv_us;
        Self::rounds(n) as f64 * step
    }

    /// Equation 2 (with the explicit firmware step term): predicted
    /// NIC-based PE barrier latency (µs).
    pub fn nic_barrier_us(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.nic_recv_us + self.nic_step_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 2 exactly as printed in the paper (no firmware-step term;
    /// the paper folds step processing into its *Recv*).
    pub fn nic_barrier_us_paper_form(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.recv_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 3: predicted factor of improvement.
    pub fn improvement(&self, n: usize) -> f64 {
        self.host_barrier_us(n) / self.nic_barrier_us(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmsim_lanai::NicModel;

    fn model_43() -> CostModel {
        CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3))
    }

    #[test]
    fn rounds_is_ceil_log2() {
        assert_eq!(CostModel::rounds(1), 0);
        assert_eq!(CostModel::rounds(2), 1);
        assert_eq!(CostModel::rounds(3), 2);
        assert_eq!(CostModel::rounds(16), 4);
        assert_eq!(CostModel::rounds(17), 5);
    }

    #[test]
    fn derived_terms_near_design_calibration() {
        let m = model_43();
        assert!((7.5..8.5).contains(&m.send_us), "send={}", m.send_us);
        assert!((10.5..12.5).contains(&m.sdma_us), "sdma={}", m.sdma_us);
        assert!(
            (0.3..1.0).contains(&m.network_us),
            "network={}",
            m.network_us
        );
        assert!((10.0..11.5).contains(&m.recv_us), "recv={}", m.recv_us);
        assert!((7.0..8.5).contains(&m.rdma_us), "rdma={}", m.rdma_us);
        assert!((6.5..7.1).contains(&m.hrecv_us), "hrecv={}", m.hrecv_us);
    }

    #[test]
    fn sixteen_node_predictions_match_paper_band() {
        let m = model_43();
        let host = m.host_barrier_us(16);
        let nic = m.nic_barrier_us(16);
        // Paper: host-PE(16) ≈ 1.78 × 102.14 ≈ 182 µs; NIC-PE(16) = 102.14.
        assert!((170.0..195.0).contains(&host), "host={host}");
        assert!((94.0..112.0).contains(&nic), "nic={nic}");
        let f = m.improvement(16);
        assert!((1.6..2.0).contains(&f), "improvement={f}");
    }

    #[test]
    fn improvement_grows_with_n() {
        let m = model_43();
        let f4 = m.improvement(4);
        let f16 = m.improvement(16);
        let f256 = m.improvement(256);
        assert!(f4 < f16 && f16 < f256, "{f4} {f16} {f256}");
    }

    #[test]
    fn improvement_grows_with_host_overhead() {
        // §2.2: an MPI-like layer increases Send/HRecv and the factor.
        let base = model_43();
        let mpi = CostModel::from_config(
            &GmConfig::paper_host(NicModel::LANAI_4_3).with_layer_overhead(2.0),
        );
        assert!(mpi.improvement(16) > base.improvement(16));
    }

    #[test]
    fn faster_nic_lowers_both_latencies() {
        let m43 = model_43();
        let m72 = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_7_2));
        assert!(m72.host_barrier_us(8) < m43.host_barrier_us(8));
        assert!(m72.nic_barrier_us(8) < m43.nic_barrier_us(8));
        // Paper: 8-node LANai 7.2 factor 1.83 > LANai 4.3 factor 1.66.
        assert!(m72.improvement(8) > m43.improvement(8));
    }

    #[test]
    fn paper_form_is_a_lower_bound() {
        let m = model_43();
        for n in [2usize, 4, 8, 16] {
            assert!(m.nic_barrier_us_paper_form(n) <= m.nic_barrier_us(n));
        }
    }
}
