//! The paper's analytic timing model (§2.2, Equations 1–3).
//!
//! * Eq. 1: `T_host = log2 N × (Send + SDMA + Network + Recv + RDMA + HRecv)`
//! * Eq. 2: `T_nic  = Send + log2 N × (Network + Recv) + RDMA + HRecv`
//! * Eq. 3: factor of improvement = `T_host / T_nic`
//!
//! The component terms are *derived from the simulator's configuration* —
//! firmware cycle counts divided by the NIC clock, plus the host overheads —
//! so the analytic prediction and the simulation share one source of truth.
//! The paper folds all NIC-side per-step barrier processing into its *Recv*
//! term; we expose it separately as [`CostModel::nic_step_us`] and add it to
//! the per-step NIC cost, which is what the measured prototype actually
//! pays (§6 discusses exactly this overhead for the GB case).

use crate::nic::BarrierCosts;
use gmsim_gm::{ExtPacket, GmConfig, Payload};
use gmsim_myrinet::{wire_size, LinkSpec, TopologyBuilder};

/// Relative tolerance of the PE/dissemination scaling forms against
/// simulation, across 32–1024 nodes and both NIC generations (worst
/// observed error ≈ 3.5%).
pub const PE_MODEL_TOLERANCE: f64 = 0.10;

/// Relative tolerance of the calibrated GB pipeline forms against
/// simulation across the same grid at `dim = 8` (worst observed error
/// ≈ 11%; the forms are fits, not first-principles derivations).
pub const GB_MODEL_TOLERANCE: f64 = 0.20;

/// Relative tolerance of the payload latency-vs-size forms
/// ([`CostModel::nic_bcast_us`] and friends) against simulation across
/// the BENCH_payload grid (1 B – 1 MiB, 16–1024 nodes, eager and
/// pipelined). The forms model the steady-state bottleneck stage with
/// calibrated wormhole-contention factors; they approximate CPU/wire
/// overlap inside a stage and the crossover neighborhood (where two
/// stages tie) is where the error peaks, so this is a calibrated
/// envelope rather than an exact derivation (worst observed cell ≈
/// +45%, most within ±20%).
pub const PAYLOAD_MODEL_TOLERANCE: f64 = 0.50;

/// Component costs in microseconds, as in Figure 2.
///
/// ```
/// use gmsim_gm::GmConfig;
/// use gmsim_lanai::NicModel;
/// use nic_barrier::CostModel;
///
/// let m = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3));
/// // Eq. 3 predicts a factor near the paper's published 1.78x at 16 nodes.
/// assert!((m.improvement(16) - 1.78).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Host posts a token until the NIC can detect it.
    pub send_us: f64,
    /// SDMA pickup + payload staging on the NIC.
    pub sdma_us: f64,
    /// Wire time: switch fall-through + propagation + serialization.
    pub network_us: f64,
    /// NIC reception handling of one data packet (host path).
    pub recv_us: f64,
    /// NIC reception handling of one NIC-terminated barrier packet —
    /// cheaper than the data path (no receive-token lookup, no RDMA prep).
    pub nic_recv_us: f64,
    /// NIC→host delivery of one event.
    pub rdma_us: f64,
    /// Host processing of one returned event.
    pub hrecv_us: f64,
    /// Firmware cost of one NIC-resident barrier step (PE), folded into
    /// *Recv* by the paper's Eq. 2 but paid by the real firmware.
    pub nic_step_us: f64,
    /// Extra wire cost of a cross-leaf hop in the two-level Clos fabric
    /// that clusters beyond 16 hosts use: two additional switch
    /// fall-throughs plus two additional link propagations (wormhole
    /// routing pays serialization only once).
    pub cross_extra_us: f64,
    /// Firmware cost of processing one GB tree collective token.
    pub gb_token_us: f64,
    /// Firmware cost of absorbing one gather arrival (GB up phase).
    pub gb_gather_us: f64,
    /// Firmware cost of one child broadcast send (GB down phase).
    pub gb_child_us: f64,
    /// Host-bus DMA time per payload byte (both SDMA and RDMA engines).
    pub dma_us_per_byte: f64,
    /// Link serialization time per payload byte (Myrinet 1.28 Gb/s).
    pub wire_us_per_byte: f64,
}

impl CostModel {
    /// Derive the model from a cluster configuration (single-crossbar
    /// topology assumed, as in the paper's testbeds).
    pub fn from_config(cfg: &GmConfig) -> Self {
        let clock = cfg.nic.clock;
        let us = |cycles: u64| clock.cycles(cycles).as_us_f64();
        let costs = cfg.nic.costs;
        let bc = BarrierCosts::GM_1_2_3;
        // Wire: NIC→switch→NIC with GM framing on a small barrier packet.
        let link = LinkSpec::MYRINET_1280;
        let bytes = wire_size(ExtPacket::WIRE_BYTES, 1);
        let network = TopologyBuilder::DEFAULT_SWITCH_LATENCY.as_us_f64()
            + 2.0 * link.propagation.as_us_f64()
            + link.serialize(bytes).as_us_f64();
        // Small-message DMA byte time is sub-microsecond; fold it in.
        let dma_us = |b: usize| b as f64 / cfg.nic.dma_bytes_per_ns / 1_000.0;
        CostModel {
            send_us: cfg.host_send_overhead.as_us_f64(),
            sdma_us: us(costs.sdma_cycles + costs.send_cycles) + dma_us(8),
            network_us: network,
            recv_us: us(costs.recv_cycles + costs.ack_tx_cycles),
            nic_recv_us: us(costs.ext_recv_cycles + costs.ack_tx_cycles),
            rdma_us: us(costs.rdma_cycles) + dma_us(16),
            hrecv_us: cfg.host_recv_overhead.as_us_f64(),
            nic_step_us: us(bc.pe_send_cycles + bc.pe_match_cycles + bc.record_cycles),
            cross_extra_us: 2.0 * TopologyBuilder::DEFAULT_SWITCH_LATENCY.as_us_f64()
                + 2.0 * link.propagation.as_us_f64(),
            gb_token_us: us(bc.gb_token_cycles),
            gb_gather_us: us(bc.gb_gather_cycles),
            gb_child_us: us(bc.gb_child_cycles),
            dma_us_per_byte: 1.0 / cfg.nic.dma_bytes_per_ns / 1_000.0,
            wire_us_per_byte: 1.0 / link.bytes_per_ns / 1_000.0,
        }
    }

    /// `ceil(log2 n)` rounds of the PE algorithm.
    pub fn rounds(n: usize) -> u32 {
        assert!(n >= 1);
        (n as f64).log2().ceil() as u32
    }

    /// Equation 1: predicted host-based PE barrier latency (µs).
    pub fn host_barrier_us(&self, n: usize) -> f64 {
        let step = self.send_us
            + self.sdma_us
            + self.network_us
            + self.recv_us
            + self.rdma_us
            + self.hrecv_us;
        Self::rounds(n) as f64 * step
    }

    /// Equation 2 (with the explicit firmware step term): predicted
    /// NIC-based PE barrier latency (µs).
    pub fn nic_barrier_us(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.nic_recv_us + self.nic_step_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 2 exactly as printed in the paper (no firmware-step term;
    /// the paper folds step processing into its *Recv*).
    pub fn nic_barrier_us_paper_form(&self, n: usize) -> f64 {
        self.send_us
            + Self::rounds(n) as f64 * (self.network_us + self.recv_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Equation 3: predicted factor of improvement.
    pub fn improvement(&self, n: usize) -> f64 {
        self.host_barrier_us(n) / self.nic_barrier_us(n)
    }

    // ---- Scale-aware forms (N beyond the paper's 16-node testbed) ----
    //
    // These extend Eqs. 1–2 to the two-level Clos fabric that
    // `TopologyBuilder::for_cluster` builds past 16 hosts: a round whose
    // partner lives in another 8-host leaf pays `cross_extra_us` on the
    // wire, everything else is unchanged. The BENCH_scale study
    // cross-checks every simulated point against these within stated
    // tolerances.

    /// Wire cost of one hop between endpoints `dist` ranks apart in an
    /// `n`-node cluster: the single-crossbar term, plus the cross-leaf
    /// surcharge once the cluster is a Clos and the partner cannot share a
    /// leaf, plus a second surcharge once the cluster is a three-level
    /// Clos (`n > 1024`) and the partner lives in another 64-host pod —
    /// the leaf→spine→core→spine→leaf route pays two more fall-throughs
    /// and two more propagations than the in-pod leaf→spine→leaf route.
    fn hop_us(&self, n: usize, dist: usize) -> f64 {
        let pod_hosts = TopologyBuilder::CLOS_LEAF_HOSTS * TopologyBuilder::CLOS_LEAF_HOSTS;
        let clos = n > TopologyBuilder::MAX_SINGLE_SWITCH_HOSTS;
        let clos3 = n > TopologyBuilder::MAX_TWO_LEVEL_HOSTS;
        if clos3 && dist >= pod_hosts {
            self.network_us + 2.0 * self.cross_extra_us
        } else if clos && dist >= TopologyBuilder::CLOS_LEAF_HOSTS {
            self.network_us + self.cross_extra_us
        } else {
            self.network_us
        }
    }

    /// Scale-aware Eq. 2: NIC-based PE latency on the standard fabric.
    /// Round `k`'s partner is `2^k` ranks away, so the first
    /// `log2(leaf size)` rounds stay intra-leaf. Equals
    /// [`CostModel::nic_barrier_us`] for `n <= 16`.
    pub fn nic_pe_us(&self, n: usize) -> f64 {
        let per_round: f64 = (0..Self::rounds(n))
            .map(|k| self.hop_us(n, 1usize << k) + self.nic_recv_us + self.nic_step_us)
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Scale-aware Eq. 1: host-based PE latency on the standard fabric.
    pub fn host_pe_us(&self, n: usize) -> f64 {
        (0..Self::rounds(n))
            .map(|k| {
                self.send_us
                    + self.sdma_us
                    + self.hop_us(n, 1usize << k)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
            })
            .sum()
    }

    /// Scale-aware NIC dissemination latency. Same round structure as PE
    /// with round-`k` distance `2^k mod n`; at powers of two the two
    /// algorithms (and predictions) coincide.
    pub fn nic_dissemination_us(&self, n: usize) -> f64 {
        let per_round: f64 = (0..Self::rounds(n))
            .map(|k| self.hop_us(n, (1usize << k) % n) + self.nic_recv_us + self.nic_step_us)
            .sum();
        self.send_us + per_round + self.rdma_us + self.hrecv_us
    }

    /// Scale-aware host dissemination latency.
    pub fn host_dissemination_us(&self, n: usize) -> f64 {
        (0..Self::rounds(n))
            .map(|k| {
                self.send_us
                    + self.sdma_us
                    + self.hop_us(n, (1usize << k) % n)
                    + self.recv_us
                    + self.rdma_us
                    + self.hrecv_us
            })
            .sum()
    }

    /// Depth of the `dim`-ary heap-shaped GB tree over `n` ranks: the
    /// level of the deepest rank, `n - 1`.
    pub fn gb_depth(n: usize, dim: usize) -> u32 {
        assert!(n >= 1 && dim >= 1);
        let mut rank = n - 1;
        let mut level = 0;
        while rank > 0 {
            rank = (rank - 1) / dim;
            level += 1;
        }
        level
    }

    /// NIC-based GB latency.
    ///
    /// Unlike PE, measured GB latency is *linear in `log2 n`* rather than
    /// stepping with tree depth: consecutive rounds pipeline through the
    /// tree, and each doubling of the cluster adds `dim - 1` gather
    /// absorptions plus child broadcast sends to the critical cycle
    /// (matching §6's observation that the tree dimension's impact is
    /// muted by pipelining). The fixed part is the tree token, which is
    /// far costlier than PE's. Calibrated for moderate arities (the
    /// scaling study's `dim = 8`); exact only to ~±10%.
    pub fn nic_gb_us(&self, n: usize, dim: usize) -> f64 {
        let per_child = (dim.saturating_sub(1)).max(1) as f64;
        self.send_us
            + self.gb_token_us
            + Self::rounds(n) as f64 * per_child * (self.gb_gather_us + self.gb_child_us)
            + self.rdma_us
            + self.hrecv_us
    }

    /// Host-based GB latency: the same pipelined-round shape as
    /// [`CostModel::nic_gb_us`], but each per-child absorption goes
    /// through the NIC's full data-path receive handling. Calibrated for
    /// moderate arities; exact only to ~±15%.
    pub fn host_gb_us(&self, n: usize, dim: usize) -> f64 {
        let per_child = (dim.saturating_sub(1)).max(1) as f64;
        self.send_us
            + self.sdma_us
            + Self::rounds(n) as f64 * per_child * self.recv_us
            + self.rdma_us
            + self.hrecv_us
    }

    // ---- Payload latency-vs-size forms (data-carrying collectives) ----
    //
    // A data-carrying collective moves `payload.bytes` through the
    // schedule in `payload.segments()` pipelined segments (eager = one
    // segment). The testbed measures *steady-state per-operation latency*:
    // operations stream back-to-back, so the measured mean converges to
    // the slowest pipeline stage's period, not the one-shot fill path.
    // These forms therefore model the bottleneck stage of each schedule:
    //
    //   bcast/reduce:  T ≈ max(sender SDMA loop, worst-link wire, combine)
    //   allreduce:     T ≈ small-payload period + serialized payload fill
    //                  (the per-node staging buffer single-buffers the
    //                  payload, so rounds cannot overlap once data rides
    //                  along — the fill path itself becomes the period)
    //   scan:          T ≈ base rounds + R × contended wire per round
    //
    // Contention factors are calibrated against the wormhole fabric:
    // a `dim`-ary tree ≤16 nodes fits one crossbar and only shares the
    // parent's egress link (factor `dim`); past that, inter-switch trunks
    // carry tree edges from multiple levels and the worst-link factor
    // grows logarithmically in the extra depth. Scan's shifted-ring
    // rounds saturate the bisection: the observed per-round wire cost is
    // `sqrt(n)/2 ×` the uncontended serialization across n = 4..256.
    // The BENCH_payload study gates every simulated point against these
    // within [`PAYLOAD_MODEL_TOLERANCE`].

    /// Host-bus DMA time for `bytes` (engine startup is charged in
    /// handler cycles, so engine time is pure per-byte).
    fn dma_bytes_us(&self, bytes: u64) -> f64 {
        bytes as f64 * self.dma_us_per_byte
    }

    /// Wire serialization of `bytes` of payload.
    fn wire_bytes_us(&self, bytes: u64) -> f64 {
        bytes as f64 * self.wire_us_per_byte
    }

    /// Child counts of each ancestor on the rank `n - 1` → root path of
    /// the `dim`-ary heap tree (deepest-first). The first entry is often
    /// below `dim` — the deepest parent may be only partially filled.
    fn tree_path_fanins(n: usize, dim: usize) -> Vec<usize> {
        let mut rank = n - 1;
        let mut fanins = Vec::new();
        while rank > 0 {
            let parent = (rank - 1) / dim;
            let children = (1..=dim).filter(|j| parent * dim + j < n).count();
            fanins.push(children);
            rank = parent;
        }
        fanins
    }

    /// Worst-link contention factor for a down-tree broadcast carrying
    /// `segs` segments. `dim` worms share the parent egress inside one
    /// crossbar; each extra tree level past the single-switch depth adds
    /// trunk sharing with logarithmic saturation, and segmentation lets
    /// worms from distinct subtree streams *interleave* on a trunk, which
    /// grows the factor as `sqrt(segs)`, saturating at 3× (measured: 2 at
    /// n = 16 for all sizes; 5.5 → 8 at n = 64 and 5 → 20 at n = 256 as
    /// eager worms split into 16 segments). Past 256 nodes the Clos
    /// fabric's bisection grows faster than the binary tree's trunk
    /// usage, so the interleaving ceiling *shrinks* as `sqrt(256 / n)`
    /// (measured 11.5 at n = 1024 vs 20 at n = 256); `n / 8` bounds the
    /// distinct streams a trunk can carry at all.
    fn bcast_link_factor(n: usize, dim: usize, segs: f64) -> f64 {
        let levels = Self::gb_depth(n, dim) as f64;
        let extra = (levels - 3.0).max(1.0);
        let base = (n - 1).min(dim) as f64 * (1.0 + extra.log2());
        // Interleaving is worst at moderate segment counts (~16-64):
        // a few long segments collide on the trunks, while very deep
        // pipelines smooth into steady streams and the factor decays
        // back toward the eager value (measured at n = 256: 20 at 16
        // segments, 21 at 64, then 11.7 at 256).
        let peak = (3.0 * (256.0 / n as f64).sqrt().min(1.0)).max(1.0);
        let interleave = (segs.sqrt().min(peak) * (64.0 / segs).sqrt().min(1.0)).max(1.0);
        let cap = (n as f64 / 8.0).max(dim as f64);
        (base * interleave).min(cap)
    }

    /// Steady-state sender-side stage: host send/completion loop, tree
    /// token, SDMA handler, and the payload's host-bus DMA.
    fn tree_sender_us(&self, bytes: u64) -> f64 {
        self.send_us + self.hrecv_us + self.gb_token_us + self.sdma_us + self.dma_bytes_us(bytes)
    }

    /// Predicted NIC-based broadcast per-operation latency (µs) for
    /// `payload` over a `dim`-ary tree: the slowest of the root's SDMA
    /// loop, the worst fabric link (carrying `bcast_link_factor` copies
    /// of every segment), and a forwarding node's receive + RDMA work.
    pub fn nic_bcast_us(&self, n: usize, dim: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let seg = payload.seg_bytes.get().min(bytes.max(1));
        let segs = payload.segments().get() as f64;
        let sender = self.tree_sender_us(bytes);
        let link = Self::bcast_link_factor(n, dim, segs) * segs * self.wire_bytes_us(seg);
        let receiver =
            segs * self.nic_recv_us + self.dma_bytes_us(bytes) + self.rdma_us + self.hrecv_us;
        sender.max(link).max(receiver)
    }

    /// Predicted NIC-based reduce per-operation latency (µs): gather
    /// traffic thins toward the root, so no trunk contention — the
    /// bottleneck is a parent absorbing `dim` children (its ingress wire,
    /// or the combine RDMA of `dim` full payloads).
    pub fn nic_reduce_us(&self, n: usize, dim: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let seg = payload.seg_bytes.get().min(bytes.max(1));
        let segs = payload.segments().get() as f64;
        let fan = (n - 1).min(dim) as f64;
        let sender = self.tree_sender_us(bytes);
        let ingress = fan * segs * self.wire_bytes_us(seg);
        let combine = fan
            * self
                .dma_bytes_us(bytes)
                .max(segs * (self.recv_us + self.gb_gather_us))
            + self.rdma_us;
        sender.max(ingress).max(combine)
    }

    /// Small-payload allreduce period: the gather-side critical cycle
    /// (per-level absorptions and down-broadcast child sends along the
    /// deepest path).
    fn allreduce_base_us(&self, n: usize, dim: usize) -> f64 {
        let mut rank = n - 1;
        let mut per_level = 0.0;
        for fan in Self::tree_path_fanins(n, dim) {
            let parent = (rank - 1) / dim;
            per_level += self.hop_us(n, rank - parent)
                + fan as f64 * (self.nic_recv_us + self.gb_gather_us + self.gb_child_us);
            rank = parent;
        }
        self.send_us + self.hrecv_us + self.gb_token_us + self.sdma_us + per_level + self.rdma_us
    }

    /// Predicted NIC-based allreduce per-operation latency (µs). The
    /// per-node SRAM staging buffer single-buffers the payload, so
    /// consecutive operations cannot overlap their data movement: the
    /// serialized fill path — leaf SDMA, per-level combine RDMA
    /// overlapped with the up-wire, the down-broadcast wire, final RDMA —
    /// adds directly onto the small-payload period. Trees deeper than one
    /// crossbar pay trunk contention on the way up, modeled as a linear
    /// depth-growth factor on the fill (1× at 4 levels, saturating at 2×
    /// from 8 levels on — deeper Clos fabrics add matching bisection).
    pub fn nic_allreduce_us(&self, n: usize, dim: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let segs = payload.segments().get() as f64;
        let per_level: f64 = Self::tree_path_fanins(n, dim)
            .iter()
            .map(|&fan| {
                (fan as f64 * self.dma_bytes_us(bytes)).max(self.wire_bytes_us(bytes))
                    + (segs - 1.0) * self.nic_recv_us
            })
            .sum();
        let fill = self.dma_bytes_us(bytes)
            + per_level
            + self.wire_bytes_us(bytes)
            + self.dma_bytes_us(bytes);
        let depth_growth = (1.0 + (Self::gb_depth(n, dim) as f64 - 4.0) / 4.0).clamp(1.0, 2.0);
        self.allreduce_base_us(n, dim) + depth_growth * fill
    }

    /// Predicted NIC-based scan per-operation latency (µs). Scan runs
    /// `log2 n` dependent PE-shaped combining rounds per operation; in
    /// round `k` every rank ships its running value `2^k` ranks away, so
    /// the fabric carries `n - 2^k` simultaneous worms and the effective
    /// per-round wire cost is `sqrt(n)/2` serializations (bisection
    /// saturation, calibrated at n = 4..256), floored by the combine
    /// RDMA.
    pub fn nic_scan_us(&self, n: usize, payload: Payload) -> f64 {
        let bytes = payload.bytes.get();
        let segs = payload.segments().get() as f64;
        let base = self.nic_pe_us(n) + self.sdma_us;
        // Per-round NIC work already charged in the base; short worms
        // hide their wire/DMA time entirely under it, and a worm only
        // builds bisection queueing once its serialization exceeds that
        // injection pacing — hence the min(1, wire/cpu) damping.
        let cpu = self.nic_recv_us + self.nic_step_us;
        let wire = self.wire_bytes_us(bytes);
        // Bisection saturation: `sqrt(n)/2` serializations per round
        // (measured at n = 4..256); past 256 nodes the Clos bisection
        // outgrows the schedule's demand and the factor damps as
        // `(256/n)^(1/4)` (measured ≈ 12 at n = 1024, not 16).
        let bisect = (n as f64).sqrt() / 2.0 * (256.0 / n as f64).powf(0.25).min(1.0);
        let contention = bisect * (wire / cpu).min(1.0);
        let per_round = (contention * wire).max(self.dma_bytes_us(bytes)).max(cpu) - cpu
            + (segs - 1.0) * self.nic_recv_us;
        base + self.dma_bytes_us(bytes) + Self::rounds(n) as f64 * per_round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmsim_gm::Segments;
    use gmsim_lanai::NicModel;

    fn model_43() -> CostModel {
        CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_4_3))
    }

    #[test]
    fn rounds_is_ceil_log2() {
        assert_eq!(CostModel::rounds(1), 0);
        assert_eq!(CostModel::rounds(2), 1);
        assert_eq!(CostModel::rounds(3), 2);
        assert_eq!(CostModel::rounds(16), 4);
        assert_eq!(CostModel::rounds(17), 5);
    }

    #[test]
    fn derived_terms_near_design_calibration() {
        let m = model_43();
        assert!((7.5..8.5).contains(&m.send_us), "send={}", m.send_us);
        assert!((10.5..12.5).contains(&m.sdma_us), "sdma={}", m.sdma_us);
        assert!(
            (0.3..1.0).contains(&m.network_us),
            "network={}",
            m.network_us
        );
        assert!((10.0..11.5).contains(&m.recv_us), "recv={}", m.recv_us);
        assert!((7.0..8.5).contains(&m.rdma_us), "rdma={}", m.rdma_us);
        assert!((6.5..7.1).contains(&m.hrecv_us), "hrecv={}", m.hrecv_us);
    }

    #[test]
    fn sixteen_node_predictions_match_paper_band() {
        let m = model_43();
        let host = m.host_barrier_us(16);
        let nic = m.nic_barrier_us(16);
        // Paper: host-PE(16) ≈ 1.78 × 102.14 ≈ 182 µs; NIC-PE(16) = 102.14.
        assert!((170.0..195.0).contains(&host), "host={host}");
        assert!((94.0..112.0).contains(&nic), "nic={nic}");
        let f = m.improvement(16);
        assert!((1.6..2.0).contains(&f), "improvement={f}");
    }

    #[test]
    fn improvement_grows_with_n() {
        let m = model_43();
        let f4 = m.improvement(4);
        let f16 = m.improvement(16);
        let f256 = m.improvement(256);
        assert!(f4 < f16 && f16 < f256, "{f4} {f16} {f256}");
    }

    #[test]
    fn improvement_grows_with_host_overhead() {
        // §2.2: an MPI-like layer increases Send/HRecv and the factor.
        let base = model_43();
        let mpi = CostModel::from_config(
            &GmConfig::paper_host(NicModel::LANAI_4_3).with_layer_overhead(2.0),
        );
        assert!(mpi.improvement(16) > base.improvement(16));
    }

    #[test]
    fn faster_nic_lowers_both_latencies() {
        let m43 = model_43();
        let m72 = CostModel::from_config(&GmConfig::paper_host(NicModel::LANAI_7_2));
        assert!(m72.host_barrier_us(8) < m43.host_barrier_us(8));
        assert!(m72.nic_barrier_us(8) < m43.nic_barrier_us(8));
        // Paper: 8-node LANai 7.2 factor 1.83 > LANai 4.3 factor 1.66.
        assert!(m72.improvement(8) > m43.improvement(8));
    }

    #[test]
    fn paper_form_is_a_lower_bound() {
        let m = model_43();
        for n in [2usize, 4, 8, 16] {
            assert!(m.nic_barrier_us_paper_form(n) <= m.nic_barrier_us(n));
        }
    }

    #[test]
    fn scaled_forms_collapse_to_paper_forms_on_one_crossbar() {
        // Up to 16 nodes there is no Clos and no cross-leaf surcharge:
        // the scale-aware predictions must equal Eqs. 1–2 exactly.
        let m = model_43();
        for n in [2usize, 4, 8, 16] {
            assert_eq!(m.nic_pe_us(n), m.nic_barrier_us(n));
            assert_eq!(m.host_pe_us(n), m.host_barrier_us(n));
        }
    }

    #[test]
    fn cross_leaf_surcharge_kicks_in_past_sixteen() {
        let m = model_43();
        // n=32 has 5 PE rounds, distances 1,2,4 intra-leaf and 8,16
        // cross-leaf: exactly two surcharges over the flat Eq. 2.
        let flat = m.nic_barrier_us(32);
        let scaled = m.nic_pe_us(32);
        assert!(
            (scaled - flat - 2.0 * m.cross_extra_us).abs() < 1e-9,
            "scaled={scaled} flat={flat} extra={}",
            m.cross_extra_us
        );
    }

    #[test]
    fn cross_pod_surcharge_kicks_in_past_one_thousand_twenty_four() {
        let m = model_43();
        // n=2048 has 11 PE rounds: distances 1..=4 intra-leaf, 8..=32
        // cross-leaf (3 surcharges), 64..=1024 cross-pod (5 double
        // surcharges).
        let flat = m.nic_barrier_us(2048);
        let scaled = m.nic_pe_us(2048);
        let expect = 3.0 * m.cross_extra_us + 5.0 * 2.0 * m.cross_extra_us;
        assert!(
            (scaled - flat - expect).abs() < 1e-9,
            "scaled={scaled} flat={flat} expect={expect}"
        );
        // At the two-level boundary the pod surcharge must NOT apply.
        let b1024 = m.nic_pe_us(1024) - m.nic_barrier_us(1024);
        assert!(
            (b1024 - 7.0 * m.cross_extra_us).abs() < 1e-9,
            "1024 nodes stay two-level: {b1024}"
        );
    }

    #[test]
    fn dissemination_matches_pe_at_powers_of_two() {
        let m = model_43();
        for n in [32usize, 64, 256, 1024] {
            assert_eq!(m.nic_dissemination_us(n), m.nic_pe_us(n));
            assert_eq!(m.host_dissemination_us(n), m.host_pe_us(n));
        }
    }

    #[test]
    fn gb_depth_of_heap_trees() {
        assert_eq!(CostModel::gb_depth(1, 8), 0);
        assert_eq!(CostModel::gb_depth(2, 8), 1);
        assert_eq!(CostModel::gb_depth(9, 8), 1);
        assert_eq!(CostModel::gb_depth(10, 8), 2);
        assert_eq!(CostModel::gb_depth(32, 8), 2);
        assert_eq!(CostModel::gb_depth(128, 8), 3);
        assert_eq!(CostModel::gb_depth(1024, 8), 4);
        // Chain when dim = 1.
        assert_eq!(CostModel::gb_depth(5, 1), 4);
    }

    #[test]
    fn nic_beats_host_at_scale_for_all_models() {
        let m = model_43();
        for n in [32usize, 128, 1024] {
            assert!(m.nic_pe_us(n) < m.host_pe_us(n));
            assert!(m.nic_gb_us(n, 8) < m.host_gb_us(n, 8));
            assert!(m.nic_dissemination_us(n) < m.host_dissemination_us(n));
        }
    }

    fn payload_quad(m: &CostModel, n: usize, p: Payload) -> [f64; 4] {
        [
            m.nic_bcast_us(n, 2, p),
            m.nic_reduce_us(n, 2, p),
            m.nic_allreduce_us(n, 2, p),
            m.nic_scan_us(n, p),
        ]
    }

    #[test]
    fn payload_forms_monotone_in_bytes() {
        let m = model_43();
        for n in [4usize, 16, 64, 256, 1024] {
            let mut prev = [0.0f64; 4];
            for bytes in [0u64, 1, 1024, 4096, 16384, 65536, 1 << 20] {
                let cur = payload_quad(&m, n, Payload::for_size(bytes));
                for (which, (c, p)) in cur.iter().zip(prev.iter()).enumerate() {
                    assert!(
                        c >= p,
                        "form {which} shrank at n={n} bytes={bytes}: {c} < {p}"
                    );
                }
                prev = cur;
            }
        }
    }

    #[test]
    fn one_segment_payloads_ignore_segmentation_granularity() {
        // At or below one segment the pipelined constructor is the same
        // single worm as the eager one, and the model must agree.
        let m = model_43();
        for bytes in [1u64, 512, 4096] {
            let eager = Payload::eager(bytes);
            let piped = Payload::pipelined(bytes, 4096);
            assert_eq!(piped.segments(), Segments::ONE);
            assert_eq!(payload_quad(&m, 64, eager), payload_quad(&m, 64, piped));
        }
    }

    #[test]
    fn zero_payload_matches_for_size_of_zero() {
        // The plain barrier is the zero-byte payload, however spelled.
        let m = model_43();
        assert_eq!(
            payload_quad(&m, 256, Payload::EMPTY),
            payload_quad(&m, 256, Payload::for_size(0))
        );
    }

    #[test]
    fn bcast_link_contention_saturates() {
        // One crossbar (≤16 nodes at dim=2): only the parent egress is
        // shared, factor = dim regardless of segmentation (the n/8 cap).
        assert_eq!(CostModel::bcast_link_factor(2, 2, 1.0), 1.0);
        assert_eq!(CostModel::bcast_link_factor(16, 2, 1.0), 2.0);
        assert_eq!(CostModel::bcast_link_factor(16, 2, 16.0), 2.0);
        // Deeper trees add trunk sharing, and segmentation interleaves
        // streams on the trunks — but never past the stream-count cap.
        let eager = CostModel::bcast_link_factor(256, 2, 1.0);
        let piped = CostModel::bcast_link_factor(256, 2, 16.0);
        assert!(eager > 2.0 && piped > eager);
        assert!(CostModel::bcast_link_factor(256, 2, 4096.0) <= 32.0);
    }

    #[test]
    fn large_payloads_dwarf_the_zero_byte_period() {
        // At 64 KiB the data movement dominates every schedule.
        let m = model_43();
        let small = payload_quad(&m, 256, Payload::EMPTY);
        let large = payload_quad(&m, 256, Payload::for_size(65536));
        for (s, l) in small.iter().zip(large.iter()) {
            assert!(*l > 3.0 * s, "payload should dominate: {l} vs {s}");
        }
    }
}
