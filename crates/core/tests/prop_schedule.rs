//! Randomized property tests for schedule construction and the
//! unexpected-message record, over the in-repo [`gmsim_des::check`]
//! harness (deterministic seeded cases).

use gmsim_des::check::forall;
use gmsim_gm::{GlobalPort, PortId, TeamId};
use nic_barrier::schedule::gb;
use nic_barrier::schedule::pe::{self, Step};
use nic_barrier::unexpected::{RecordMeta, UnexpectedRecord};
use std::collections::{HashMap, HashSet};

/// PE send/receive matching: across all ranks, every transmission has
/// exactly one matching reception (the global matching property that
/// makes the barrier deadlock-free).
#[test]
fn pe_sends_match_recvs() {
    forall(128, 0x5EED_0001, |g| {
        let n = g.usize_in(1, 64);
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for rank in 0..n {
            for s in pe::schedule(rank, n) {
                match s {
                    Step::Exchange(p) => {
                        assert!(p != rank, "self-exchange");
                        sends.push((rank, p));
                        recvs.push((p, rank));
                    }
                    Step::SendTo(p) => sends.push((rank, p)),
                    Step::RecvFrom(p) => recvs.push((p, rank)),
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs);
    });
}

/// Each rank's schedule length is bounded by ceil(log2 n) + 2 fold
/// steps, and each peer appears at most twice (fold + release).
#[test]
fn pe_schedule_is_compact() {
    forall(256, 0x5EED_0002, |g| {
        let n = g.usize_in(1, 128);
        let rank = g.usize_in(0, 127) % n;
        let steps = pe::schedule(rank, n);
        let log2 = (n as f64).log2().ceil() as usize;
        assert!(steps.len() <= log2 + 2, "len {} for n={n}", steps.len());
        let mut per_peer: HashMap<usize, usize> = HashMap::new();
        for s in &steps {
            let p = match s {
                Step::Exchange(p) | Step::SendTo(p) | Step::RecvFrom(p) => *p,
            };
            *per_peer.entry(p).or_default() += 1;
        }
        assert!(per_peer.values().all(|&c| c <= 2));
    });
}

/// The PE dependency graph is acyclic under the simple round semantics:
/// simulate all ranks lock-step and verify the barrier drains (no
/// deadlock) — a direct executable check of schedule soundness.
#[test]
fn pe_schedules_drain_without_deadlock() {
    forall(128, 0x5EED_0003, |g| {
        let n = g.usize_in(1, 48);
        let mut idx = vec![0usize; n];
        let mut sent: HashSet<(usize, usize)> = HashSet::new(); // (from,to) pending
        let mut progressed = true;
        while progressed {
            progressed = false;
            for rank in 0..n {
                let steps = pe::schedule(rank, n);
                while idx[rank] < steps.len() {
                    match steps[idx[rank]] {
                        Step::SendTo(p) => {
                            sent.insert((rank, p));
                            idx[rank] += 1;
                            progressed = true;
                        }
                        Step::Exchange(p) => {
                            sent.insert((rank, p));
                            if sent.remove(&(p, rank)) {
                                idx[rank] += 1;
                                progressed = true;
                            } else {
                                break;
                            }
                        }
                        Step::RecvFrom(p) => {
                            if sent.remove(&(p, rank)) {
                                idx[rank] += 1;
                                progressed = true;
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
        }
        assert!(
            (0..n).all(|r| idx[r] == pe::schedule(r, n).len()),
            "deadlock at idx {idx:?}"
        );
    });
}

/// GB trees are spanning: every rank reaches the root, parent/children
/// are mutually consistent, and child counts respect the dimension.
#[test]
fn gb_tree_is_spanning() {
    forall(256, 0x5EED_0004, |g| {
        let n = g.usize_in(1, 128);
        let dim = g.usize_in(1, 16);
        let mut reached = 0;
        for rank in 0..n {
            let kids = gb::children(rank, dim, n);
            assert!(kids.len() <= dim);
            for c in &kids {
                assert_eq!(gb::parent(*c, dim), Some(rank));
            }
            let mut r = rank;
            let mut hops = 0;
            while let Some(p) = gb::parent(r, dim) {
                r = p;
                hops += 1;
                assert!(hops <= n);
            }
            assert_eq!(r, 0);
            reached += 1;
        }
        assert_eq!(reached, n);
        let edges: usize = (0..n).map(|r| gb::children(r, dim, n).len()).sum();
        assert_eq!(edges, n - 1);
    });
}

/// Depth shrinks (weakly) as the dimension grows.
#[test]
fn gb_depth_monotone_in_dim() {
    forall(128, 0x5EED_0005, |g| {
        let n = g.usize_in(2, 100);
        let mut prev = usize::MAX;
        for dim in 1..n {
            let d = gb::depth(n, dim);
            assert!(d <= prev, "depth grew at dim={dim}");
            prev = d;
        }
        assert_eq!(gb::depth(n, n - 1), 1);
    });
}

/// Model-based test of the unexpected record against plain FIFO queues.
#[derive(Debug, Clone)]
enum RecOp {
    Set {
        port: u8,
        node: usize,
        sport: u8,
        kind: u8,
        value: u64,
    },
    CheckClear {
        port: u8,
        node: usize,
        sport: u8,
        kind: u8,
    },
    DrainPort {
        port: u8,
    },
}

#[test]
fn record_matches_reference_model() {
    forall(128, 0x5EED_0006, |g| {
        let ops = g.vec_of(1, 200, |g| match g.usize_in(0, 6) {
            0..=2 => RecOp::Set {
                port: g.u8_in(0, 7),
                node: g.usize_in(0, 3),
                sport: g.u8_in(0, 7),
                kind: g.u8_in(1, 3),
                value: g.any_u64(),
            },
            3..=5 => RecOp::CheckClear {
                port: g.u8_in(0, 7),
                node: g.usize_in(0, 3),
                sport: g.u8_in(0, 7),
                kind: g.u8_in(1, 3),
            },
            _ => RecOp::DrainPort {
                port: g.u8_in(0, 7),
            },
        });
        let mut real = UnexpectedRecord::new(4);
        // Reference: FIFO queue per (port, endpoint, kind). A fixed epoch
        // keeps supersession out of this model (covered by unit tests).
        let mut model: HashMap<(u8, GlobalPort, u8), Vec<RecordMeta>> = HashMap::new();
        for op in ops {
            match op {
                RecOp::Set {
                    port,
                    node,
                    sport,
                    kind,
                    value,
                } => {
                    let from = GlobalPort::new(node, sport);
                    let meta = RecordMeta {
                        team: TeamId::GLOBAL,
                        kind,
                        epoch: 1,
                        value,
                        seg: 0,
                    };
                    real.set(PortId(port), from, meta);
                    model.entry((port, from, kind)).or_default().push(meta);
                }
                RecOp::CheckClear {
                    port,
                    node,
                    sport,
                    kind,
                } => {
                    let from = GlobalPort::new(node, sport);
                    let expected = match model.get_mut(&(port, from, kind)) {
                        Some(q) if !q.is_empty() => Some(q.remove(0)),
                        _ => None,
                    };
                    assert_eq!(
                        real.check_clear(PortId(port), TeamId::GLOBAL, from, kind),
                        expected
                    );
                    // peek agrees with "anything from this endpoint left"
                    let any_left = model
                        .iter()
                        .any(|((p, f, _), q)| *p == port && *f == from && !q.is_empty());
                    assert_eq!(real.peek(PortId(port), from), any_left);
                }
                RecOp::DrainPort { port } => {
                    let got = real.drain_port(PortId(port));
                    let mut want: Vec<(GlobalPort, RecordMeta)> = model
                        .iter()
                        .filter(|((p, _, _), _)| *p == port)
                        .flat_map(|((_, g, _), q)| q.iter().map(move |m| (*g, *m)))
                        .collect();
                    want.sort_by_key(|(g, m)| (g.node, g.port, m.team, m.kind));
                    model.retain(|(p, _, _), _| *p != port);
                    // drain is sorted by (endpoint, kind); same-key order
                    // is FIFO, matching the reference construction order.
                    assert_eq!(got, want);
                }
            }
            let model_total: usize = model.values().map(Vec::len).sum();
            assert_eq!(real.outstanding(), model_total);
        }
    });
}
