//! GM wire packets.
//!
//! Everything that crosses the fabric is a [`Packet`]: reliable data,
//! acknowledgments, negative acknowledgments, or an *extension* packet — the
//! mechanism through which the barrier adds its gather/broadcast/PE packet
//! types ("There is a separate packet type for each phase", §5.2).

use crate::ids::GlobalPort;

/// Sequence number on a reliable connection.
///
/// 64 bits wide so soak runs never exhaust the space in practice, but all
/// comparisons still go through [`seq_before`] so the protocol stays correct
/// even across a wrap (connections may start anywhere in the space).
pub type Seq = u64;

/// Serial-number ("RFC 1982"-style) ordering: true when `a` precedes `b`
/// in the circular sequence space, i.e. `b` is at most half the space ahead.
/// Wrap-safe: `seq_before(Seq::MAX, 0)` holds.
pub fn seq_before(a: Seq, b: Seq) -> bool {
    (b.wrapping_sub(a) as i64) > 0
}

/// Body of an extension (collective) packet: a type opcode and two small
/// operand words, enough for barrier round tags and reduce operands. These
/// stay opaque to the GM core; the firmware extension interprets them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtPacket {
    /// Extension-defined packet type (e.g. PE-exchange / gather / broadcast).
    pub ext_type: u8,
    /// First operand word (barrier extensions use it as the step/round tag).
    pub a: u64,
    /// Second operand word (reduction value, broadcast payload, ...).
    pub b: u64,
    /// Pipeline segment index this packet carries (0 for barriers and
    /// eager payloads).
    pub seg: u32,
    /// Modelled payload bytes riding behind the header (0 for barriers).
    pub len: u32,
}

impl ExtPacket {
    /// On-wire *header* size: opcode + two u64 operands. Data segments add
    /// [`ExtPacket::len`] on top; the zero-payload barrier packet is exactly
    /// this many bytes, as it has been since the original prototype.
    pub const WIRE_BYTES: usize = 17;

    /// A zero-payload extension packet (barrier rounds, control).
    pub fn new(ext_type: u8, a: u64, b: u64) -> Self {
        ExtPacket {
            ext_type,
            a,
            b,
            seg: 0,
            len: 0,
        }
    }

    /// Attach a data segment (builder style).
    pub fn with_segment(mut self, seg: u32, len: u32) -> Self {
        self.seg = seg;
        self.len = len;
        self
    }
}

/// What a packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Reliable user data, carrying a per-connection sequence number and an
    /// application tag (our stand-in for message contents).
    Data {
        /// Connection sequence number.
        seq: Seq,
        /// Application payload bytes (modelled, not stored byte-for-byte).
        len: usize,
        /// Application tag, delivered to the receiving process.
        tag: u64,
        /// Whether the sender asked for a completion callback (a `Sent`
        /// event) once this packet is acknowledged.
        notify: bool,
    },
    /// Cumulative acknowledgment: everything `< ack` has been received.
    Ack {
        /// One past the highest in-order sequence received.
        ack: Seq,
    },
    /// Negative acknowledgment: receiver expected `expected`, got something
    /// later. Sender must go-back-N from `expected`.
    Nack {
        /// The sequence number the receiver is waiting for.
        expected: Seq,
    },
    /// An extension (collective) packet. When `seq` is `Some`, the packet
    /// travels inside the connection's reliable, ordered stream (the §3.3
    /// design the paper adopts); `None` is the fire-and-forget mode of the
    /// paper's prototype, kept for the reliability ablation.
    Ext {
        /// Reliable-stream sequence number, if any.
        seq: Option<Seq>,
        /// Extension body.
        body: ExtPacket,
    },
}

/// A packet in flight between two endpoints. `Copy`: packets are a few
/// scalar words, so the hot path moves them by value instead of cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Sending endpoint.
    pub src: GlobalPort,
    /// Receiving endpoint.
    pub dst: GlobalPort,
    /// Payload discriminant.
    pub kind: PacketKind,
}

impl Packet {
    /// Bytes of payload this packet puts on the wire (headers/route bytes
    /// are added by the fabric's wire format).
    pub fn payload_bytes(&self) -> usize {
        match &self.kind {
            PacketKind::Data { len, .. } => *len,
            // Real GM puts a small (wrapping) sequence field on the wire;
            // the in-memory `Seq` width is a simulator convenience and does
            // not change the modelled byte count.
            PacketKind::Ack { .. } | PacketKind::Nack { .. } => 4,
            PacketKind::Ext { body, .. } => ExtPacket::WIRE_BYTES + body.len as usize,
        }
    }

    /// The sequence number, for packets that travel in the reliable stream.
    pub fn seq(&self) -> Option<Seq> {
        match &self.kind {
            PacketKind::Data { seq, .. } => Some(*seq),
            PacketKind::Ext { seq, .. } => *seq,
            _ => None,
        }
    }

    /// True for packets that consume a slot in the reliable stream and must
    /// be acknowledged.
    pub fn is_reliable(&self) -> bool {
        self.seq().is_some()
    }

    /// Stable one-byte code for trace records: 1 = data, 2 = ack, 3 = nack,
    /// `0x10 | ext_type` for extension packets.
    pub fn trace_code(&self) -> u8 {
        match &self.kind {
            PacketKind::Data { .. } => 1,
            PacketKind::Ack { .. } => 2,
            PacketKind::Nack { .. } => 3,
            PacketKind::Ext { body, .. } => 0x10 | (body.ext_type & 0x0f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(n: usize, p: u8) -> GlobalPort {
        GlobalPort::new(n, p)
    }

    #[test]
    fn payload_sizes() {
        let data = Packet {
            src: gp(0, 1),
            dst: gp(1, 1),
            kind: PacketKind::Data {
                seq: 0,
                len: 100,
                tag: 7,
                notify: false,
            },
        };
        assert_eq!(data.payload_bytes(), 100);
        let ack = Packet {
            src: gp(1, 0),
            dst: gp(0, 0),
            kind: PacketKind::Ack { ack: 3 },
        };
        assert_eq!(ack.payload_bytes(), 4);
        let ext = Packet {
            src: gp(0, 1),
            dst: gp(1, 1),
            kind: PacketKind::Ext {
                seq: None,
                body: ExtPacket::new(1, 0, 0),
            },
        };
        assert_eq!(ext.payload_bytes(), ExtPacket::WIRE_BYTES);
        let seg = Packet {
            src: gp(0, 1),
            dst: gp(1, 1),
            kind: PacketKind::Ext {
                seq: None,
                body: ExtPacket::new(3, 0, 0).with_segment(2, 4096),
            },
        };
        assert_eq!(seg.payload_bytes(), ExtPacket::WIRE_BYTES + 4096);
    }

    #[test]
    fn seq_before_is_wrap_safe() {
        assert!(seq_before(0, 1));
        assert!(!seq_before(1, 0));
        assert!(!seq_before(7, 7));
        assert!(seq_before(Seq::MAX, 0));
        assert!(seq_before(Seq::MAX - 2, Seq::MAX));
        assert!(!seq_before(1, Seq::MAX));
    }

    #[test]
    fn reliability_classification() {
        let mk = |kind| Packet {
            src: gp(0, 1),
            dst: gp(1, 1),
            kind,
        };
        assert!(mk(PacketKind::Data {
            seq: 5,
            len: 1,
            tag: 0,
            notify: false,
        })
        .is_reliable());
        assert!(!mk(PacketKind::Ack { ack: 1 }).is_reliable());
        assert!(!mk(PacketKind::Nack { expected: 1 }).is_reliable());
        let body = ExtPacket::new(2, 1, 2);
        assert!(mk(PacketKind::Ext { seq: Some(9), body }).is_reliable());
        assert!(!mk(PacketKind::Ext { seq: None, body }).is_reliable());
        assert_eq!(mk(PacketKind::Ext { seq: Some(9), body }).seq(), Some(9));
    }
}
