//! Events GM delivers to host processes.
//!
//! A GM process polls `gm_receive()`; each poll may return one event. The
//! paper adds `GM_BARRIER_COMPLETED_EVENT` to the stock set; our collective
//! extensions add value-carrying completions for the future-work
//! collectives (§8).

use crate::ids::{GlobalPort, TeamId};

/// An event returned by the (modelled) `gm_receive()` poll. `Copy`: all
/// variants are scalar words, so events move by value through the host
/// queue without cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GmEvent {
    /// A send completed and its send token returned to the process.
    Sent {
        /// Application tag of the completed send.
        tag: u64,
    },
    /// A message arrived into a provided receive buffer.
    Recv {
        /// Sending endpoint.
        src: GlobalPort,
        /// Payload length.
        len: usize,
        /// Application tag.
        tag: u64,
    },
    /// `GM_BARRIER_COMPLETED_EVENT`: the NIC finished the barrier this port
    /// initiated on `team`.
    BarrierComplete {
        /// The communicator whose barrier completed — lets a process
        /// driving several concurrent teams on one port tell completions
        /// apart.
        team: TeamId,
    },
    /// A NIC-based broadcast delivered `value` to this port.
    BroadcastComplete {
        /// The broadcast payload word.
        value: u64,
    },
    /// A NIC-based reduction completed with `value` (delivered at the root,
    /// or everywhere for allreduce).
    ReduceComplete {
        /// The reduced value.
        value: u64,
    },
    /// A NIC-based prefix scan completed; `value` is this rank's inclusive
    /// prefix.
    ScanComplete {
        /// This rank's prefix result.
        value: u64,
    },
    /// The reliable connection to `peer` exhausted its retransmit budget
    /// and gave up; in-flight sends to that peer will never complete.
    PeerUnreachable {
        /// The unreachable peer node.
        peer: crate::ids::NodeId,
    },
}

impl GmEvent {
    /// Bytes the RDMA engine moves to the host to deliver this event
    /// (receive-token completion record, plus payload for data).
    pub fn rdma_bytes(&self) -> usize {
        match self {
            GmEvent::Recv { len, .. } => 16 + len,
            _ => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_cost_scales_with_payload() {
        let small = GmEvent::BarrierComplete {
            team: TeamId::GLOBAL,
        }
        .rdma_bytes();
        let data = GmEvent::Recv {
            src: GlobalPort::new(0, 1),
            len: 100,
            tag: 0,
        }
        .rdma_bytes();
        assert_eq!(small, 16);
        assert_eq!(data, 116);
    }
}
