//! Node, port and endpoint identifiers.

use gmsim_myrinet::NicId;
use std::fmt;

/// Number of ports per NIC in GM 1.2.3 ("each NIC can support a maximum of
/// eight ports, some of which are reserved").
pub const GM_NUM_PORTS: u8 = 8;

/// Port 0 is reserved for the driver/mapper, as in real GM; user processes
/// open ports `1..GM_NUM_PORTS`.
pub const GM_FIRST_USER_PORT: u8 = 1;

/// A cluster node. Each node has one host processor complex and one NIC;
/// `NodeId(i)` is attached to fabric `NicId(i)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// A port index on some NIC, `0..GM_NUM_PORTS`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

/// A communication endpoint: a (node, port) pair. Barrier participants are
/// endpoints, not nodes — two processes on one node can both take part.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalPort {
    /// The node whose NIC hosts the port.
    pub node: NodeId,
    /// The port index on that NIC.
    pub port: PortId,
}

/// A communicator identity: every collective belongs to a team, and the
/// NIC keeps barrier state per `(port, team)` so overlapping teams that
/// share a NIC progress independently. The id travels in the high half of
/// the extension packet's `a` word, so two teams' flags can never be
/// confused on the wire. [`TeamId::GLOBAL`] (id 0) is the implicit
/// whole-cluster communicator every pre-team API uses; its wire encoding
/// is all-zero high bits, which keeps the single-team path bit-exact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TeamId(pub u32);

impl TeamId {
    /// The default whole-cluster communicator (id 0).
    pub const GLOBAL: TeamId = TeamId(0);
}

impl NodeId {
    /// The fabric NIC this node's messages travel through.
    pub fn nic(self) -> NicId {
        NicId(self.0)
    }
}

impl PortId {
    /// True for indices a user process may open.
    pub fn is_user(self) -> bool {
        (GM_FIRST_USER_PORT..GM_NUM_PORTS).contains(&self.0)
    }

    /// Index as usize, for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl GlobalPort {
    /// Construct from raw indices.
    pub fn new(node: usize, port: u8) -> Self {
        GlobalPort {
            node: NodeId(node),
            port: PortId(port),
        }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
impl fmt::Debug for GlobalPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}p{}", self.node.0, self.port.0)
    }
}
impl fmt::Debug for TeamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_maps_to_nic() {
        assert_eq!(NodeId(3).nic(), NicId(3));
    }

    #[test]
    fn user_port_range() {
        assert!(!PortId(0).is_user());
        assert!(PortId(1).is_user());
        assert!(PortId(7).is_user());
        assert!(!PortId(8).is_user());
    }

    #[test]
    fn global_port_construction() {
        let gp = GlobalPort::new(2, 5);
        assert_eq!(gp.node, NodeId(2));
        assert_eq!(gp.port, PortId(5));
        assert_eq!(format!("{gp:?}"), "n2p5");
    }

    #[test]
    fn team_id_basics() {
        assert_eq!(TeamId::GLOBAL, TeamId(0));
        assert_eq!(format!("{:?}", TeamId(7)), "t7");
        assert!(TeamId(1) < TeamId(2));
    }
}
