//! Reliable NIC-to-NIC connections.
//!
//! "At the host level GM is connectionless, but provides reliability by
//! maintaining reliable connections between NICs of different nodes" (§4.1).
//! Each connection carries its own sequence space, a sent (unacknowledged)
//! list, cumulative acks, nacks, and go-back-N retransmission: "If a packet
//! is negatively acknowledged, all packets sent after that packet must be
//! resent" (§4.4).
//!
//! This module is a pure state machine — no timing, no scheduling — which
//! is what makes the retransmission corner cases unit-testable.

use crate::ids::NodeId;
use crate::packet::{seq_before, Packet, Seq};
use gmsim_des::SimTime;
use std::collections::VecDeque;

/// Verdict on an arriving reliable packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxVerdict {
    /// In order: deliver it and bump the expected sequence.
    Accept,
    /// Already delivered: discard, but re-ack so the sender can advance.
    Duplicate,
    /// A gap: discard and nack with the sequence we still need.
    OutOfOrder {
        /// The sequence number the receiver is waiting for.
        expected: Seq,
    },
}

/// An unacknowledged transmission.
#[derive(Debug, Clone, Copy)]
pub struct SentEntry {
    /// The packet as transmitted (retransmissions copy it).
    pub packet: Packet,
    /// When it was last (re)transmitted — identifies stale timers.
    pub sent_at: SimTime,
}

/// One reliable connection to a peer NIC.
#[derive(Debug)]
pub struct Connection {
    peer: NodeId,
    next_tx: Seq,
    expect_rx: Seq,
    sent: VecDeque<SentEntry>,
    /// Retransmissions performed (stats/ablation).
    retransmissions: u64,
    /// Whether the firmware currently has an RTO timer event pending for
    /// this connection (exactly one timer per connection, re-armed lazily).
    timer_armed: bool,
    /// Consecutive genuine timeouts since the last forward progress —
    /// drives exponential RTO backoff.
    backoff_level: u32,
    /// Timeout-driven retransmission attempts since the last forward
    /// progress — compared against the retransmit budget.
    attempts: u32,
    /// Set once the retransmit budget is exhausted; the connection stops
    /// transmitting and the peer is reported unreachable.
    dead: bool,
    /// When the peer last gave evidence of life (ack or nack arrival).
    /// Anchors the RTO deadline: congestion slows acks but does not stop
    /// them, so the timeout clock restarts on every arrival (RFC 6298
    /// style); a genuine loss stalls the ack stream and still expires.
    last_peer_activity: SimTime,
}

impl Connection {
    /// A fresh connection to `peer`.
    pub fn new(peer: NodeId) -> Self {
        Connection::with_initial_seq(peer, 0)
    }

    /// A connection whose sequence space starts at `seq` on both sides
    /// (lets tests exercise wrap-around without a trillion-packet soak).
    pub fn with_initial_seq(peer: NodeId, seq: Seq) -> Self {
        Connection {
            peer,
            next_tx: seq,
            expect_rx: seq,
            sent: VecDeque::new(),
            retransmissions: 0,
            timer_armed: false,
            backoff_level: 0,
            attempts: 0,
            dead: false,
            last_peer_activity: SimTime::ZERO,
        }
    }

    /// The peer NIC.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Allocate the next transmit sequence number. The space wraps; all
    /// orderings go through [`seq_before`], so a wrap is harmless as long
    /// as fewer than half the space is ever in flight (the send-token pool
    /// keeps the window a few dozen packets wide).
    pub fn assign_seq(&mut self) -> Seq {
        let s = self.next_tx;
        self.next_tx = self.next_tx.wrapping_add(1);
        s
    }

    /// Record a reliable transmission awaiting acknowledgment.
    ///
    /// # Panics
    /// Panics if the packet carries no sequence number or sequences are
    /// recorded out of order (both are firmware bugs).
    pub fn record_sent(&mut self, packet: Packet, at: SimTime) {
        let seq = packet.seq().expect("recording an unsequenced packet");
        if let Some(back) = self.sent.back() {
            assert!(
                seq_before(back.packet.seq().unwrap(), seq),
                "sent list out of order: {seq}"
            );
        }
        self.sent.push_back(SentEntry {
            packet,
            sent_at: at,
        });
    }

    /// Apply a cumulative ack: drop every entry with `seq < ack`.
    /// Returns how many sends completed.
    pub fn on_ack(&mut self, ack: Seq) -> usize {
        self.on_ack_drain(ack).len()
    }

    /// Apply a cumulative ack, returning the completed entries (the caller
    /// returns send tokens and fires completion callbacks from them).
    pub fn on_ack_drain(&mut self, ack: Seq) -> Vec<SentEntry> {
        let mut done = Vec::new();
        self.drain_acked_into(ack, &mut done);
        done
    }

    /// Like [`Connection::on_ack_drain`], but appending into a caller-owned
    /// buffer so the ack hot path can reuse one scratch allocation.
    pub fn drain_acked_into(&mut self, ack: Seq, out: &mut Vec<SentEntry>) {
        while let Some(front) = self.sent.front() {
            if seq_before(front.packet.seq().unwrap(), ack) {
                out.push(self.sent.pop_front().unwrap());
            } else {
                break;
            }
        }
    }

    /// Go-back-N after a nack: return copies of every unacked packet with
    /// `seq >= expected`, marking them retransmitted at `now`.
    pub fn on_nack(&mut self, expected: Seq, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        for entry in self.sent.iter_mut() {
            if !seq_before(entry.packet.seq().unwrap(), expected) {
                entry.sent_at = now;
                self.retransmissions += 1;
                out.push(entry.packet);
            }
        }
        out
    }

    /// Retransmission-timer expiry for the entry `(seq, sent_at)`. If that
    /// exact transmission is still unacknowledged, go-back-N from it;
    /// otherwise the timer is stale and nothing happens.
    pub fn on_timeout(&mut self, seq: Seq, sent_at: SimTime, now: SimTime) -> Vec<Packet> {
        let live = self
            .sent
            .iter()
            .any(|e| e.packet.seq().unwrap() == seq && e.sent_at == sent_at);
        if !live {
            return Vec::new();
        }
        self.on_nack(seq, now)
    }

    /// Oldest unacknowledged entry, if any (drives timer re-arming).
    pub fn oldest_unacked(&self) -> Option<&SentEntry> {
        self.sent.front()
    }

    /// Total modelled payload bytes awaiting acknowledgment (drives the
    /// size-aware component of the RTO deadline).
    pub fn unacked_payload_bytes(&self) -> u64 {
        self.sent
            .iter()
            .map(|e| e.packet.payload_bytes() as u64)
            .sum()
    }

    /// Update the recorded transmission instant of `seq` (after the SEND
    /// machine fixes the actual wire time of a retransmission).
    pub fn refresh_sent_at(&mut self, seq: Seq, at: SimTime) {
        if let Some(e) = self
            .sent
            .iter_mut()
            .find(|e| e.packet.seq().unwrap() == seq)
        {
            e.sent_at = at;
        }
    }

    /// Classify without advancing (used when delivery might be refused, e.g.
    /// receiver-not-ready, in which case the window must not move).
    /// Wrap-safe: "already delivered" means strictly before `expect_rx` in
    /// serial-number order.
    pub fn peek_rx(&self, seq: Seq) -> RxVerdict {
        if seq == self.expect_rx {
            RxVerdict::Accept
        } else if seq_before(seq, self.expect_rx) {
            RxVerdict::Duplicate
        } else {
            RxVerdict::OutOfOrder {
                expected: self.expect_rx,
            }
        }
    }

    /// Advance the receive window after a peeked Accept was honoured.
    pub fn advance_rx(&mut self) {
        self.expect_rx = self.expect_rx.wrapping_add(1);
    }

    /// Number of unacknowledged packets.
    pub fn in_flight(&self) -> usize {
        self.sent.len()
    }

    /// Classify an arriving reliable packet and advance the receive window
    /// on acceptance. Same acceptance rule as [`Connection::peek_rx`] — this
    /// is literally peek-then-advance, so the two paths cannot drift.
    pub fn classify_rx(&mut self, seq: Seq) -> RxVerdict {
        let verdict = self.peek_rx(seq);
        if verdict == RxVerdict::Accept {
            self.advance_rx();
        }
        verdict
    }

    /// Cumulative ack value to advertise (one past the last in-order seq).
    pub fn ack_value(&self) -> Seq {
        self.expect_rx
    }

    /// Total retransmitted packets.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Whether an RTO timer event is currently pending for this connection.
    pub fn timer_armed(&self) -> bool {
        self.timer_armed
    }

    /// Record that a timer event was scheduled (or consumed).
    pub fn set_timer_armed(&mut self, armed: bool) {
        self.timer_armed = armed;
    }

    /// Current exponential-backoff level (0 after any forward progress).
    pub fn backoff_level(&self) -> u32 {
        self.backoff_level
    }

    /// Timeout-driven retransmission attempts since the last forward
    /// progress.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Register one genuine RTO expiry: bumps the attempt count and the
    /// backoff level (capped well below anything that could overflow the
    /// RTO doubling loop).
    pub fn note_timeout_attempt(&mut self) {
        self.attempts += 1;
        self.backoff_level = (self.backoff_level + 1).min(32);
    }

    /// The peer made forward progress (acked or nacked something): reset
    /// the backoff and the retransmit-budget clock.
    pub fn reset_liveness(&mut self) {
        self.attempts = 0;
        self.backoff_level = 0;
    }

    /// Record evidence of peer life at `at` (ack/nack arrival).
    pub fn note_peer_activity(&mut self, at: SimTime) {
        if at > self.last_peer_activity {
            self.last_peer_activity = at;
        }
    }

    /// When the peer last acked or nacked anything ([`SimTime::ZERO`] if
    /// never).
    pub fn last_peer_activity(&self) -> SimTime {
        self.last_peer_activity
    }

    /// True once the retransmit budget was exhausted and the connection
    /// declared its peer unreachable.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Give up on the peer: stop retransmitting and drop the unacked list
    /// (the caller surfaces `PeerUnreachable` to the affected ports).
    /// Returns the abandoned entries so tokens can be reclaimed.
    pub fn mark_dead(&mut self) -> Vec<SentEntry> {
        self.dead = true;
        self.sent.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalPort;
    use crate::packet::PacketKind;

    fn pkt(seq: Seq) -> Packet {
        Packet {
            src: GlobalPort::new(0, 1),
            dst: GlobalPort::new(1, 1),
            kind: PacketKind::Data {
                seq,
                len: 8,
                tag: 0,
                notify: false,
            },
        }
    }

    fn conn() -> Connection {
        Connection::new(NodeId(1))
    }

    #[test]
    fn seq_assignment_is_dense() {
        let mut c = conn();
        assert_eq!(c.assign_seq(), 0);
        assert_eq!(c.assign_seq(), 1);
        assert_eq!(c.assign_seq(), 2);
    }

    #[test]
    fn in_order_receive_accepts() {
        let mut c = conn();
        assert_eq!(c.classify_rx(0), RxVerdict::Accept);
        assert_eq!(c.classify_rx(1), RxVerdict::Accept);
        assert_eq!(c.ack_value(), 2);
    }

    #[test]
    fn gap_nacks_and_does_not_advance() {
        let mut c = conn();
        assert_eq!(c.classify_rx(0), RxVerdict::Accept);
        assert_eq!(c.classify_rx(3), RxVerdict::OutOfOrder { expected: 1 });
        assert_eq!(c.ack_value(), 1);
        // the missing packet is still acceptable
        assert_eq!(c.classify_rx(1), RxVerdict::Accept);
    }

    #[test]
    fn duplicate_detected() {
        let mut c = conn();
        assert_eq!(c.classify_rx(0), RxVerdict::Accept);
        assert_eq!(c.classify_rx(0), RxVerdict::Duplicate);
    }

    #[test]
    fn cumulative_ack_clears_prefix() {
        let mut c = conn();
        for s in 0..4 {
            let q = c.assign_seq();
            c.record_sent(pkt(q), SimTime::from_ns(s));
        }
        assert_eq!(c.in_flight(), 4);
        assert_eq!(c.on_ack(2), 2);
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.oldest_unacked().unwrap().packet.seq(), Some(2));
        assert_eq!(c.on_ack(100), 2);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn nack_triggers_go_back_n() {
        let mut c = conn();
        for s in 0..3 {
            let q = c.assign_seq();
            c.record_sent(pkt(q), SimTime::from_ns(s));
        }
        let re = c.on_nack(1, SimTime::from_us(5));
        let seqs: Vec<_> = re.iter().map(|p| p.seq().unwrap()).collect();
        assert_eq!(seqs, [1, 2]);
        assert_eq!(c.retransmissions(), 2);
        // sent_at was refreshed
        assert!(c
            .sent
            .iter()
            .filter(|e| e.packet.seq().unwrap() >= 1)
            .all(|e| e.sent_at == SimTime::from_us(5)));
    }

    #[test]
    fn stale_timeout_is_ignored() {
        let mut c = conn();
        let q = c.assign_seq();
        c.record_sent(pkt(q), SimTime::from_ns(10));
        // A timer armed for an older transmission instant must not fire.
        assert!(c
            .on_timeout(0, SimTime::from_ns(5), SimTime::from_us(1))
            .is_empty());
        // The live one does.
        let re = c.on_timeout(0, SimTime::from_ns(10), SimTime::from_us(1));
        assert_eq!(re.len(), 1);
    }

    #[test]
    fn timeout_after_ack_is_ignored() {
        let mut c = conn();
        let q = c.assign_seq();
        c.record_sent(pkt(q), SimTime::from_ns(10));
        c.on_ack(1);
        assert!(c
            .on_timeout(0, SimTime::from_ns(10), SimTime::from_us(1))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn recording_out_of_order_panics() {
        let mut c = conn();
        c.record_sent(pkt(5), SimTime::ZERO);
        c.record_sent(pkt(3), SimTime::ZERO);
    }

    #[test]
    fn seq_space_wraps_without_panicking() {
        let mut c = Connection::with_initial_seq(NodeId(1), Seq::MAX - 1);
        let a = c.assign_seq();
        let b = c.assign_seq();
        let d = c.assign_seq();
        assert_eq!((a, b, d), (Seq::MAX - 1, Seq::MAX, 0));
        c.record_sent(pkt(a), SimTime::ZERO);
        c.record_sent(pkt(b), SimTime::ZERO);
        c.record_sent(pkt(d), SimTime::ZERO);
        // A cumulative ack from past the wrap clears the whole prefix.
        assert_eq!(c.on_ack(1), 3);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn receive_window_wraps() {
        let mut c = Connection::with_initial_seq(NodeId(1), Seq::MAX);
        assert_eq!(c.classify_rx(Seq::MAX), RxVerdict::Accept);
        assert_eq!(c.classify_rx(0), RxVerdict::Accept);
        assert_eq!(c.ack_value(), 1);
        // Pre-wrap seqs are duplicates, not "huge future" packets.
        assert_eq!(c.classify_rx(Seq::MAX), RxVerdict::Duplicate);
        assert_eq!(c.classify_rx(2), RxVerdict::OutOfOrder { expected: 1 });
    }

    #[test]
    fn classify_matches_peek_then_advance() {
        let mut a = conn();
        let mut b = conn();
        for seq in [0u64, 2, 0, 1, 1, 3, 2] {
            let via_peek = {
                let v = a.peek_rx(seq);
                if v == RxVerdict::Accept {
                    a.advance_rx();
                }
                v
            };
            assert_eq!(b.classify_rx(seq), via_peek, "seq {seq}");
        }
    }

    #[test]
    fn liveness_tracking() {
        let mut c = conn();
        assert_eq!((c.attempts(), c.backoff_level()), (0, 0));
        c.note_timeout_attempt();
        c.note_timeout_attempt();
        assert_eq!((c.attempts(), c.backoff_level()), (2, 2));
        c.reset_liveness();
        assert_eq!((c.attempts(), c.backoff_level()), (0, 0));
    }

    #[test]
    fn mark_dead_drains_unacked() {
        let mut c = conn();
        for _ in 0..3 {
            let q = c.assign_seq();
            c.record_sent(pkt(q), SimTime::ZERO);
        }
        assert!(!c.is_dead());
        let abandoned = c.mark_dead();
        assert!(c.is_dead());
        assert_eq!(abandoned.len(), 3);
        assert_eq!(c.in_flight(), 0);
        // A stale timeout on a dead connection retransmits nothing.
        assert!(c
            .on_timeout(0, SimTime::ZERO, SimTime::from_us(1))
            .is_empty());
    }
}
