//! Reliable NIC-to-NIC connections.
//!
//! "At the host level GM is connectionless, but provides reliability by
//! maintaining reliable connections between NICs of different nodes" (§4.1).
//! Each connection carries its own sequence space, a sent (unacknowledged)
//! list, cumulative acks, nacks, and go-back-N retransmission: "If a packet
//! is negatively acknowledged, all packets sent after that packet must be
//! resent" (§4.4).
//!
//! This module is a pure state machine — no timing, no scheduling — which
//! is what makes the retransmission corner cases unit-testable.

use crate::ids::NodeId;
use crate::packet::{Packet, Seq};
use gmsim_des::SimTime;
use std::collections::VecDeque;

/// Verdict on an arriving reliable packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxVerdict {
    /// In order: deliver it and bump the expected sequence.
    Accept,
    /// Already delivered: discard, but re-ack so the sender can advance.
    Duplicate,
    /// A gap: discard and nack with the sequence we still need.
    OutOfOrder {
        /// The sequence number the receiver is waiting for.
        expected: Seq,
    },
}

/// An unacknowledged transmission.
#[derive(Debug, Clone, Copy)]
pub struct SentEntry {
    /// The packet as transmitted (retransmissions copy it).
    pub packet: Packet,
    /// When it was last (re)transmitted — identifies stale timers.
    pub sent_at: SimTime,
}

/// One reliable connection to a peer NIC.
#[derive(Debug)]
pub struct Connection {
    peer: NodeId,
    next_tx: Seq,
    expect_rx: Seq,
    sent: VecDeque<SentEntry>,
    /// Retransmissions performed (stats/ablation).
    retransmissions: u64,
}

impl Connection {
    /// A fresh connection to `peer`.
    pub fn new(peer: NodeId) -> Self {
        Connection {
            peer,
            next_tx: 0,
            expect_rx: 0,
            sent: VecDeque::new(),
            retransmissions: 0,
        }
    }

    /// The peer NIC.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Allocate the next transmit sequence number.
    pub fn assign_seq(&mut self) -> Seq {
        let s = self.next_tx;
        self.next_tx = self
            .next_tx
            .checked_add(1)
            .expect("sequence space exhausted");
        s
    }

    /// Record a reliable transmission awaiting acknowledgment.
    ///
    /// # Panics
    /// Panics if the packet carries no sequence number or sequences are
    /// recorded out of order (both are firmware bugs).
    pub fn record_sent(&mut self, packet: Packet, at: SimTime) {
        let seq = packet.seq().expect("recording an unsequenced packet");
        if let Some(back) = self.sent.back() {
            assert!(
                back.packet.seq().unwrap() < seq,
                "sent list out of order: {seq}"
            );
        }
        self.sent.push_back(SentEntry {
            packet,
            sent_at: at,
        });
    }

    /// Apply a cumulative ack: drop every entry with `seq < ack`.
    /// Returns how many sends completed.
    pub fn on_ack(&mut self, ack: Seq) -> usize {
        self.on_ack_drain(ack).len()
    }

    /// Apply a cumulative ack, returning the completed entries (the caller
    /// returns send tokens and fires completion callbacks from them).
    pub fn on_ack_drain(&mut self, ack: Seq) -> Vec<SentEntry> {
        let mut done = Vec::new();
        self.drain_acked_into(ack, &mut done);
        done
    }

    /// Like [`Connection::on_ack_drain`], but appending into a caller-owned
    /// buffer so the ack hot path can reuse one scratch allocation.
    pub fn drain_acked_into(&mut self, ack: Seq, out: &mut Vec<SentEntry>) {
        while let Some(front) = self.sent.front() {
            if front.packet.seq().unwrap() < ack {
                out.push(self.sent.pop_front().unwrap());
            } else {
                break;
            }
        }
    }

    /// Go-back-N after a nack: return copies of every unacked packet with
    /// `seq >= expected`, marking them retransmitted at `now`.
    pub fn on_nack(&mut self, expected: Seq, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        for entry in self.sent.iter_mut() {
            if entry.packet.seq().unwrap() >= expected {
                entry.sent_at = now;
                self.retransmissions += 1;
                out.push(entry.packet);
            }
        }
        out
    }

    /// Retransmission-timer expiry for the entry `(seq, sent_at)`. If that
    /// exact transmission is still unacknowledged, go-back-N from it;
    /// otherwise the timer is stale and nothing happens.
    pub fn on_timeout(&mut self, seq: Seq, sent_at: SimTime, now: SimTime) -> Vec<Packet> {
        let live = self
            .sent
            .iter()
            .any(|e| e.packet.seq().unwrap() == seq && e.sent_at == sent_at);
        if !live {
            return Vec::new();
        }
        self.on_nack(seq, now)
    }

    /// Oldest unacknowledged entry, if any (drives timer re-arming).
    pub fn oldest_unacked(&self) -> Option<&SentEntry> {
        self.sent.front()
    }

    /// Update the recorded transmission instant of `seq` (after the SEND
    /// machine fixes the actual wire time of a retransmission).
    pub fn refresh_sent_at(&mut self, seq: Seq, at: SimTime) {
        if let Some(e) = self
            .sent
            .iter_mut()
            .find(|e| e.packet.seq().unwrap() == seq)
        {
            e.sent_at = at;
        }
    }

    /// Classify without advancing (used when delivery might be refused, e.g.
    /// receiver-not-ready, in which case the window must not move).
    pub fn peek_rx(&self, seq: Seq) -> RxVerdict {
        if seq == self.expect_rx {
            RxVerdict::Accept
        } else if seq < self.expect_rx {
            RxVerdict::Duplicate
        } else {
            RxVerdict::OutOfOrder {
                expected: self.expect_rx,
            }
        }
    }

    /// Advance the receive window after a peeked Accept was honoured.
    pub fn advance_rx(&mut self) {
        self.expect_rx += 1;
    }

    /// Number of unacknowledged packets.
    pub fn in_flight(&self) -> usize {
        self.sent.len()
    }

    /// Classify an arriving reliable packet and advance the receive window
    /// on acceptance.
    pub fn classify_rx(&mut self, seq: Seq) -> RxVerdict {
        if seq == self.expect_rx {
            self.expect_rx += 1;
            RxVerdict::Accept
        } else if seq < self.expect_rx {
            RxVerdict::Duplicate
        } else {
            RxVerdict::OutOfOrder {
                expected: self.expect_rx,
            }
        }
    }

    /// Cumulative ack value to advertise (one past the last in-order seq).
    pub fn ack_value(&self) -> Seq {
        self.expect_rx
    }

    /// Total retransmitted packets.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalPort;
    use crate::packet::PacketKind;

    fn pkt(seq: Seq) -> Packet {
        Packet {
            src: GlobalPort::new(0, 1),
            dst: GlobalPort::new(1, 1),
            kind: PacketKind::Data {
                seq,
                len: 8,
                tag: 0,
                notify: false,
            },
        }
    }

    fn conn() -> Connection {
        Connection::new(NodeId(1))
    }

    #[test]
    fn seq_assignment_is_dense() {
        let mut c = conn();
        assert_eq!(c.assign_seq(), 0);
        assert_eq!(c.assign_seq(), 1);
        assert_eq!(c.assign_seq(), 2);
    }

    #[test]
    fn in_order_receive_accepts() {
        let mut c = conn();
        assert_eq!(c.classify_rx(0), RxVerdict::Accept);
        assert_eq!(c.classify_rx(1), RxVerdict::Accept);
        assert_eq!(c.ack_value(), 2);
    }

    #[test]
    fn gap_nacks_and_does_not_advance() {
        let mut c = conn();
        assert_eq!(c.classify_rx(0), RxVerdict::Accept);
        assert_eq!(c.classify_rx(3), RxVerdict::OutOfOrder { expected: 1 });
        assert_eq!(c.ack_value(), 1);
        // the missing packet is still acceptable
        assert_eq!(c.classify_rx(1), RxVerdict::Accept);
    }

    #[test]
    fn duplicate_detected() {
        let mut c = conn();
        assert_eq!(c.classify_rx(0), RxVerdict::Accept);
        assert_eq!(c.classify_rx(0), RxVerdict::Duplicate);
    }

    #[test]
    fn cumulative_ack_clears_prefix() {
        let mut c = conn();
        for s in 0..4 {
            let q = c.assign_seq();
            c.record_sent(pkt(q), SimTime::from_ns(s));
        }
        assert_eq!(c.in_flight(), 4);
        assert_eq!(c.on_ack(2), 2);
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.oldest_unacked().unwrap().packet.seq(), Some(2));
        assert_eq!(c.on_ack(100), 2);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn nack_triggers_go_back_n() {
        let mut c = conn();
        for s in 0..3 {
            let q = c.assign_seq();
            c.record_sent(pkt(q), SimTime::from_ns(s));
        }
        let re = c.on_nack(1, SimTime::from_us(5));
        let seqs: Vec<_> = re.iter().map(|p| p.seq().unwrap()).collect();
        assert_eq!(seqs, [1, 2]);
        assert_eq!(c.retransmissions(), 2);
        // sent_at was refreshed
        assert!(c
            .sent
            .iter()
            .filter(|e| e.packet.seq().unwrap() >= 1)
            .all(|e| e.sent_at == SimTime::from_us(5)));
    }

    #[test]
    fn stale_timeout_is_ignored() {
        let mut c = conn();
        let q = c.assign_seq();
        c.record_sent(pkt(q), SimTime::from_ns(10));
        // A timer armed for an older transmission instant must not fire.
        assert!(c
            .on_timeout(0, SimTime::from_ns(5), SimTime::from_us(1))
            .is_empty());
        // The live one does.
        let re = c.on_timeout(0, SimTime::from_ns(10), SimTime::from_us(1));
        assert_eq!(re.len(), 1);
    }

    #[test]
    fn timeout_after_ack_is_ignored() {
        let mut c = conn();
        let q = c.assign_seq();
        c.record_sent(pkt(q), SimTime::from_ns(10));
        c.on_ack(1);
        assert!(c
            .on_timeout(0, SimTime::from_ns(10), SimTime::from_us(1))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn recording_out_of_order_panics() {
        let mut c = conn();
        c.record_sent(pkt(5), SimTime::ZERO);
        c.record_sent(pkt(3), SimTime::ZERO);
    }
}
