//! The host side: processor occupancy, the process model, and the GM host
//! API surface.
//!
//! GM processes communicate by filling send tokens and polling
//! `gm_receive()`. We model a process as a [`HostProgram`]: an event-driven
//! state machine that reacts to [`GmEvent`]s and emits [`HostAction`]s. The
//! host processor itself is a serial resource with a `busy_until` clock and
//! two calibrated overheads — the paper's *Send* (initiating a send until
//! the NIC can detect it) and *HRecv* (processing one returned event).
//!
//! Because the host is explicitly modelled as *busy* only while sending,
//! receiving or computing, the fuzzy-barrier behaviour of §2.1 falls out
//! naturally: between initiating a NIC-based barrier and its completion
//! event, [`HostAction::Compute`] time overlaps the in-flight barrier.

use crate::config::GmConfig;
use crate::events::GmEvent;
use crate::ids::{GlobalPort, NodeId, PortId};
use crate::token::CollectiveToken;
use gmsim_des::trace::{ComponentId, TracePayload, Tracer, Unit};
use gmsim_des::SimTime;
use std::collections::VecDeque;

/// Host processor counters.
#[derive(Debug, Clone, Default)]
pub struct HostStats {
    /// Events processed through the poll loop.
    pub events: u64,
    /// Sends initiated.
    pub sends: u64,
    /// Total application compute time executed.
    pub compute: SimTime,
}

/// One node's host processor and its event queue.
#[derive(Debug)]
pub struct Host {
    node: NodeId,
    send_overhead: SimTime,
    recv_overhead: SimTime,
    busy_until: SimTime,
    pending: VecDeque<(PortId, GmEvent)>,
    processing: bool,
    /// Counters.
    pub stats: HostStats,
}

impl Host {
    /// A host for `node` with the configured overheads.
    pub fn new(node: NodeId, config: &GmConfig) -> Self {
        Host {
            node,
            send_overhead: config.host_send_overhead,
            recv_overhead: config.host_recv_overhead,
            busy_until: SimTime::ZERO,
            pending: VecDeque::new(),
            processing: false,
            stats: HostStats::default(),
        }
    }

    /// This host's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// When the host processor is next free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// An event's RDMA completed at `now`: queue it for the poll loop.
    /// Returns the processing-completion time to schedule, if the loop was
    /// idle (otherwise the in-flight processing will chain to it).
    pub fn enqueue(&mut self, port: PortId, ev: GmEvent, now: SimTime) -> Option<SimTime> {
        self.pending.push_back((port, ev));
        if self.processing {
            return None;
        }
        self.processing = true;
        Some(self.reserve(self.recv_overhead, now))
    }

    /// Processing of the head event finished: pop and return it.
    ///
    /// # Panics
    /// Panics if nothing was being processed (scheduling bug).
    pub fn finish(&mut self) -> (PortId, GmEvent) {
        assert!(self.processing, "finish without processing");
        self.stats.events += 1;
        self.pending.pop_front().expect("processing an empty queue")
    }

    /// After the program reacted (and possibly extended `busy_until`),
    /// chain to the next queued event, if any. Returns the next
    /// processing-completion time to schedule.
    pub fn next(&mut self, now: SimTime) -> Option<SimTime> {
        if self.pending.is_empty() {
            self.processing = false;
            return None;
        }
        Some(self.reserve(self.recv_overhead, now))
    }

    /// Occupy the host for `dur` starting no earlier than `now`; returns
    /// the end time.
    pub fn reserve(&mut self, dur: SimTime, now: SimTime) -> SimTime {
        let start = self.busy_until.max(now);
        self.busy_until = start + dur;
        self.busy_until
    }

    /// Occupy the host for one send initiation; returns when the NIC can
    /// detect the token (the paper's *Send* term ends).
    pub fn reserve_send(&mut self, now: SimTime) -> SimTime {
        self.stats.sends += 1;
        self.reserve(self.send_overhead, now)
    }

    /// Occupy the host with application compute.
    pub fn reserve_compute(&mut self, dur: SimTime, now: SimTime) -> SimTime {
        self.stats.compute += dur;
        self.reserve(dur, now)
    }

    /// Events waiting in the poll queue.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }
}

/// What a process can ask the system to do.
#[derive(Debug, Clone)]
pub enum HostAction {
    /// `gm_send_with_callback`: send `len` bytes to `dst`.
    Send {
        /// Destination endpoint.
        dst: GlobalPort,
        /// Payload bytes.
        len: usize,
        /// Application tag.
        tag: u64,
        /// Request a `Sent` completion event.
        notify: bool,
    },
    /// `gm_provide_receive_buffer`, `n` times.
    ProvideRecv(u32),
    /// `gm_barrier_send_with_callback` and friends: start a NIC collective.
    Collective(CollectiveToken),
    /// Application computation occupying the host.
    Compute(SimTime),
    /// Record a timestamped measurement mark.
    Note(u64),
    /// Record a mark timestamped at the end of the host work queued so far
    /// in this callback (program-order completion time).
    NoteAtBusy(u64),
    /// Close this port (process exit).
    ClosePort,
}

/// The API handle a program uses during one callback.
#[derive(Debug)]
pub struct HostCtx {
    /// Current virtual time.
    pub now: SimTime,
    /// The node this program runs on.
    pub node: NodeId,
    /// The port this program owns.
    pub port: PortId,
    actions: Vec<HostAction>,
    tracer: Tracer,
}

impl HostCtx {
    /// A fresh context for one callback (tracing disabled; unit tests).
    pub fn new(now: SimTime, node: NodeId, port: PortId) -> Self {
        HostCtx::with_buffer(now, node, port, Vec::new(), Tracer::disabled())
    }

    /// A context reusing a caller-owned (empty) action buffer, so the
    /// cluster's host-event hot path allocates no per-callback `Vec`.
    pub fn with_buffer(
        now: SimTime,
        node: NodeId,
        port: PortId,
        actions: Vec<HostAction>,
        tracer: Tracer,
    ) -> Self {
        debug_assert!(actions.is_empty(), "recycled action buffer not drained");
        HostCtx {
            now,
            node,
            port,
            actions,
            tracer,
        }
    }

    /// Record a structured trace event attributed to this node's host
    /// processor (no-op when tracing is disabled).
    pub fn trace(&self, payload: TracePayload) {
        self.tracer.record(
            self.now,
            ComponentId {
                node: self.node.0 as u32,
                unit: Unit::Host,
            },
            payload,
        );
    }

    /// The endpoint this program owns.
    pub fn me(&self) -> GlobalPort {
        GlobalPort {
            node: self.node,
            port: self.port,
        }
    }

    /// Send without a completion callback.
    pub fn send(&mut self, dst: GlobalPort, len: usize, tag: u64) {
        self.actions.push(HostAction::Send {
            dst,
            len,
            tag,
            notify: false,
        });
    }

    /// Send with a `Sent` completion event.
    pub fn send_notify(&mut self, dst: GlobalPort, len: usize, tag: u64) {
        self.actions.push(HostAction::Send {
            dst,
            len,
            tag,
            notify: true,
        });
    }

    /// Provide `n` receive buffers.
    pub fn provide_recv(&mut self, n: u32) {
        self.actions.push(HostAction::ProvideRecv(n));
    }

    /// Start a NIC-based collective described by `token`.
    pub fn start_collective(&mut self, token: CollectiveToken) {
        self.actions.push(HostAction::Collective(token));
    }

    /// Perform `dur` of application computation.
    pub fn compute(&mut self, dur: SimTime) {
        self.actions.push(HostAction::Compute(dur));
    }

    /// Record measurement mark `tag` (timestamped by the cluster).
    pub fn note(&mut self, tag: u64) {
        self.actions.push(HostAction::Note(tag));
    }

    /// Record mark `tag`, timestamped when the host finishes the work this
    /// callback queued before it (compute, send initiations).
    pub fn note_after_work(&mut self, tag: u64) {
        self.actions.push(HostAction::NoteAtBusy(tag));
    }

    /// Close the port and exit.
    pub fn close_port(&mut self) {
        self.actions.push(HostAction::ClosePort);
    }

    /// Drain the collected actions (cluster glue only).
    pub fn into_actions(self) -> Vec<HostAction> {
        self.actions
    }
}

/// A modelled GM process.
///
/// `Send` because the parallel engine moves each partition's nodes — and
/// the programs installed on them — onto worker threads.
pub trait HostProgram: Send {
    /// The process started and its port is open.
    fn on_start(&mut self, ctx: &mut HostCtx);

    /// `gm_receive()` returned `ev`.
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TeamId;

    fn host() -> Host {
        Host::new(NodeId(0), &GmConfig::default())
    }

    #[test]
    fn enqueue_idle_schedules_processing() {
        let mut h = host();
        let at = h.enqueue(
            PortId(1),
            GmEvent::BarrierComplete {
                team: TeamId::GLOBAL,
            },
            SimTime::from_us(10),
        );
        // HRecv = 6.8us
        assert_eq!(at, Some(SimTime::from_us_f64(16.8)));
        assert_eq!(h.queue_depth(), 1);
    }

    #[test]
    fn enqueue_while_processing_chains() {
        let mut h = host();
        let first = h.enqueue(
            PortId(1),
            GmEvent::BarrierComplete {
                team: TeamId::GLOBAL,
            },
            SimTime::ZERO,
        );
        assert!(first.is_some());
        let second = h.enqueue(
            PortId(1),
            GmEvent::BarrierComplete {
                team: TeamId::GLOBAL,
            },
            SimTime::ZERO,
        );
        assert!(second.is_none(), "loop already running");
        let (_, _) = h.finish();
        let next = h.next(first.unwrap());
        assert_eq!(
            next,
            Some(SimTime::from_us_f64(13.6)),
            "second HRecv starts right after the first"
        );
        h.finish();
        assert_eq!(h.next(SimTime::from_us(20)), None);
    }

    #[test]
    fn busy_host_delays_event_processing() {
        let mut h = host();
        h.reserve_compute(SimTime::from_us(100), SimTime::ZERO);
        let at = h.enqueue(
            PortId(1),
            GmEvent::BarrierComplete {
                team: TeamId::GLOBAL,
            },
            SimTime::from_us(5),
        );
        assert_eq!(at, Some(SimTime::from_us_f64(106.8)));
        assert_eq!(h.stats.compute, SimTime::from_us(100));
    }

    #[test]
    fn reserve_send_accumulates() {
        let mut h = host();
        let a = h.reserve_send(SimTime::ZERO);
        let b = h.reserve_send(SimTime::ZERO);
        assert_eq!(a, SimTime::from_us(8));
        assert_eq!(b, SimTime::from_us(16), "back-to-back sends serialize");
        assert_eq!(h.stats.sends, 2);
    }

    #[test]
    #[should_panic(expected = "finish without processing")]
    fn finish_when_idle_panics() {
        host().finish();
    }

    #[test]
    fn ctx_collects_actions_in_order() {
        let mut ctx = HostCtx::new(SimTime::ZERO, NodeId(0), PortId(1));
        ctx.send(GlobalPort::new(1, 1), 8, 1);
        ctx.compute(SimTime::from_us(5));
        ctx.note(99);
        let acts = ctx.into_actions();
        assert_eq!(acts.len(), 3);
        assert!(matches!(acts[0], HostAction::Send { notify: false, .. }));
        assert!(matches!(acts[1], HostAction::Compute(_)));
        assert!(matches!(acts[2], HostAction::Note(99)));
    }

    #[test]
    fn ctx_me_is_this_endpoint() {
        let ctx = HostCtx::new(SimTime::ZERO, NodeId(3), PortId(2));
        assert_eq!(ctx.me(), GlobalPort::new(3, 2));
    }
}
