//! The firmware extension hook.
//!
//! The paper implements its barrier "as an addition to Myricom's GM message
//! passing subsystem": new packet types handled inside the MCP's state
//! machines and a new kind of send token. [`McpExtension`] is that seam as
//! a trait — the `nic-barrier` crate plugs its barrier (and the future-work
//! collectives) into the firmware without this crate knowing anything about
//! barrier semantics.
//!
//! Extension handlers run *on the NIC*: they charge cycles on the NIC
//! processor through [`McpCore`] and emit the same
//! [`McpOutput`]s the built-in state machines do.

use crate::ids::{GlobalPort, PortId};
use crate::mcp::{McpCore, McpOutput};
use crate::packet::ExtPacket;
use crate::token::CollectiveToken;
use gmsim_des::SimTime;
use std::any::Any;

/// Firmware extension entry points.
///
/// `now` is the virtual time the triggering condition became visible to the
/// firmware; implementations charge their processing cost via
/// `core.hw.cpu` and use `core` helpers to transmit packets or complete
/// events to the host, pushing results into `out`.
/// `Send` because the parallel engine moves each partition's NICs — and
/// their installed extensions — onto worker threads.
pub trait McpExtension: Send {
    /// The SDMA state machine picked up a collective send token queued by
    /// the host on `port` (the paper's `gm_barrier_send_with_callback`).
    fn on_collective_token(
        &mut self,
        core: &mut McpCore,
        port: PortId,
        token: CollectiveToken,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    );

    /// The RECV/RDMA machinery accepted an extension packet addressed to
    /// `dst` (a port on this NIC) from `src`.
    fn on_ext_packet(
        &mut self,
        core: &mut McpCore,
        src: GlobalPort,
        dst: GlobalPort,
        body: ExtPacket,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    );

    /// A process opened `port` (allows §3.2 record-then-reject handling).
    fn on_port_open(
        &mut self,
        core: &mut McpCore,
        port: PortId,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let _ = (core, port, now, out);
    }

    /// A process closed `port`.
    fn on_port_close(
        &mut self,
        core: &mut McpCore,
        port: PortId,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let _ = (core, port, now, out);
    }

    /// Downcast support, so tests and benches can read extension-specific
    /// statistics after a run.
    fn as_any(&self) -> &dyn Any;
}

/// Stock GM: no collective support. Receiving a collective token or packet
/// with this extension installed is a configuration error and panics.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct NullExtension;

impl McpExtension for NullExtension {
    fn on_collective_token(
        &mut self,
        _core: &mut McpCore,
        port: PortId,
        _token: CollectiveToken,
        _now: SimTime,
        _out: &mut Vec<McpOutput>,
    ) {
        panic!("collective token on {port:?} but no firmware extension is installed");
    }

    fn on_ext_packet(
        &mut self,
        _core: &mut McpCore,
        src: GlobalPort,
        _dst: GlobalPort,
        _body: ExtPacket,
        _now: SimTime,
        _out: &mut Vec<McpOutput>,
    ) {
        panic!("extension packet from {src:?} but no firmware extension is installed");
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
