//! The RECV and RDMA state machines: wire packets → host deliveries.
//!
//! "The RECV state machine receives incoming packets into receive buffers
//! and handles acknowledgment and negative acknowledgment packets. ... The
//! RDMA state machine prepares acknowledgment and negative acknowledgment
//! packets and DMAs the data to the host buffer corresponding to an
//! appropriate receive token" (§4.1).

use super::{Mcp, McpOutput};
use crate::connection::RxVerdict;
use crate::events::GmEvent;
use crate::ids::{GlobalPort, NodeId, PortId};
use crate::packet::{Packet, PacketKind, Seq};
use gmsim_des::trace::{TracePayload, Unit};
use gmsim_des::SimTime;

impl Mcp {
    /// A worm fully arrived at this NIC at `now`. `corrupted` marks a CRC
    /// failure injected by the fabric: the NIC burns reception time, then
    /// discards silently (the sender's timeout recovers).
    pub fn handle_wire_packet(
        &mut self,
        pkt: Packet,
        corrupted: bool,
        now: SimTime,
    ) -> Vec<McpOutput> {
        let mut out = Vec::new();
        self.handle_wire_packet_into(pkt, corrupted, now, &mut out);
        out
    }

    /// [`Mcp::handle_wire_packet`] appending into a caller-owned buffer
    /// (hot path).
    pub fn handle_wire_packet_into(
        &mut self,
        pkt: Packet,
        corrupted: bool,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let costs = self.core.config().nic.costs;
        match pkt.kind {
            PacketKind::Ack { ack } => {
                let t = self.core.exec(costs.ack_rx_cycles, now);
                if corrupted {
                    self.core.stats.crc_drops += 1;
                    return;
                }
                // Any intact ack proves the peer is alive: reset the
                // backoff/budget clock and restart the RTO anchor.
                self.core.conn_mut(pkt.src.node).reset_liveness();
                self.core.conn_mut(pkt.src.node).note_peer_activity(t);
                let mut acked = std::mem::take(&mut self.core.acked_scratch);
                self.core
                    .conn_mut(pkt.src.node)
                    .drain_acked_into(ack, &mut acked);
                for entry in acked.drain(..) {
                    if let PacketKind::Data { tag, notify, .. } = entry.packet.kind {
                        // The send event's resources are free: the send
                        // token returns to the process.
                        let port = entry.packet.src.port;
                        self.core.port_mut(port).return_send_token();
                        if notify {
                            self.core
                                .complete_to_host(port, GmEvent::Sent { tag }, t, out);
                        }
                    }
                }
                self.core.acked_scratch = acked;
            }
            PacketKind::Nack { expected } => {
                let t = self.core.exec(costs.ack_rx_cycles, now);
                if corrupted {
                    self.core.stats.crc_drops += 1;
                    return;
                }
                self.core.conn_mut(pkt.src.node).reset_liveness();
                self.core.conn_mut(pkt.src.node).note_peer_activity(t);
                let again = self.core.conn_mut(pkt.src.node).on_nack(expected, t);
                self.core.stats.retx += again.len() as u64;
                self.retransmit(pkt.src.node, again, t, out);
            }
            PacketKind::Data { seq, len, tag, .. } => {
                let t = self.core.exec(costs.recv_cycles, now);
                if corrupted {
                    self.core.stats.crc_drops += 1;
                    return;
                }
                match self.core.conn(pkt.src.node).peek_rx(seq) {
                    RxVerdict::Duplicate => {
                        self.core.stats.dup_drops += 1;
                        self.send_ack(pkt.src.node, t, out);
                    }
                    RxVerdict::OutOfOrder { expected } => {
                        self.send_nack(pkt.src.node, expected, t, out);
                    }
                    RxVerdict::Accept => {
                        let port_ok = self.core.port(pkt.dst.port).is_open();
                        let token_ok =
                            port_ok && self.core.port_mut(pkt.dst.port).take_recv_token();
                        if !token_ok {
                            // Receiver not ready: refuse without advancing
                            // the window; the sender will go-back-N.
                            self.core.stats.rnr_refusals += 1;
                            self.send_nack(pkt.src.node, seq, t, out);
                            return;
                        }
                        self.core.conn_mut(pkt.src.node).advance_rx();
                        self.send_ack(pkt.src.node, t, out);
                        self.core.stats.data_delivered += 1;
                        self.core.complete_to_host(
                            pkt.dst.port,
                            GmEvent::Recv {
                                src: pkt.src,
                                len,
                                tag,
                            },
                            t,
                            out,
                        );
                    }
                }
            }
            PacketKind::Ext { seq, body } => {
                let t = self.core.exec(costs.ext_recv_cycles, now);
                if corrupted {
                    self.core.stats.crc_drops += 1;
                    return;
                }
                match seq {
                    Some(seq) => match self.core.conn(pkt.src.node).peek_rx(seq) {
                        RxVerdict::Duplicate => {
                            self.core.stats.dup_drops += 1;
                            self.send_ack(pkt.src.node, t, out);
                        }
                        RxVerdict::OutOfOrder { expected } => {
                            self.send_nack(pkt.src.node, expected, t, out);
                        }
                        RxVerdict::Accept => {
                            self.core.conn_mut(pkt.src.node).advance_rx();
                            self.send_ack(pkt.src.node, t, out);
                            self.ext
                                .on_ext_packet(&mut self.core, pkt.src, pkt.dst, body, t, out);
                        }
                    },
                    None => {
                        // Unreliable collective packet: straight to the
                        // extension (the paper's prototype path).
                        self.ext
                            .on_ext_packet(&mut self.core, pkt.src, pkt.dst, body, t, out);
                    }
                }
            }
        }
    }

    /// Go-back-N retransmission after a nack. Arms no timers: whenever a
    /// connection has traffic in flight its single RTO timer is already
    /// pending, and its lazy deadline check picks up the refreshed
    /// `sent_at` values on expiry.
    fn retransmit(
        &mut self,
        peer: NodeId,
        pkts: Vec<Packet>,
        ready: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let costs = self.core.config().nic.costs;
        for pkt in pkts {
            let at = self.core.exec(costs.send_cycles, ready);
            let seq = pkt.seq().unwrap();
            self.core.conn_mut(peer).refresh_sent_at(seq, at);
            self.core.trace(
                at,
                Unit::Send,
                TracePayload::Retransmit {
                    peer: peer.0 as u32,
                },
            );
            out.push(McpOutput::Transmit { at, pkt });
        }
    }

    fn send_ack(&mut self, peer: NodeId, ready: SimTime, out: &mut Vec<McpOutput>) {
        let costs = self.core.config().nic.costs;
        let t = self.core.exec(costs.ack_tx_cycles, ready);
        let ack = self.core.conn(peer).ack_value();
        self.core.stats.ack_tx += 1;
        let pkt = Packet {
            src: GlobalPort {
                node: self.core.node(),
                port: PortId(0),
            },
            dst: GlobalPort {
                node: peer,
                port: PortId(0),
            },
            kind: PacketKind::Ack { ack },
        };
        self.core.transmit_control(pkt, t, out);
    }

    fn send_nack(&mut self, peer: NodeId, expected: Seq, ready: SimTime, out: &mut Vec<McpOutput>) {
        let costs = self.core.config().nic.costs;
        let t = self.core.exec(costs.ack_tx_cycles, ready);
        self.core.stats.nack_tx += 1;
        let pkt = Packet {
            src: GlobalPort {
                node: self.core.node(),
                port: PortId(0),
            },
            dst: GlobalPort {
                node: peer,
                port: PortId(0),
            },
            kind: PacketKind::Nack { expected },
        };
        self.core.transmit_control(pkt, t, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GmConfig;
    use crate::ext::NullExtension;
    use crate::mcp::McpCore;
    use crate::token::SendToken;

    fn mcp_at(node: usize) -> Mcp {
        let mut m = Mcp::new(
            McpCore::new(NodeId(node), 4, GmConfig::default()),
            Box::new(NullExtension),
        );
        m.open_port(PortId(1), SimTime::ZERO);
        m
    }

    fn data_pkt(seq: Seq) -> Packet {
        Packet {
            src: GlobalPort::new(0, 1),
            dst: GlobalPort::new(1, 1),
            kind: PacketKind::Data {
                seq,
                len: 32,
                tag: 9,
                notify: false,
            },
        }
    }

    #[test]
    fn in_order_data_is_acked_and_delivered() {
        let mut m = mcp_at(1);
        let out = m.handle_wire_packet(data_pkt(0), false, SimTime::ZERO);
        let acks = out
            .iter()
            .filter(|o| {
                matches!(o, McpOutput::Transmit { pkt, .. } if matches!(pkt.kind, PacketKind::Ack { .. }))
            })
            .count();
        let deliveries = out
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    McpOutput::HostEvent {
                        ev: GmEvent::Recv { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!((acks, deliveries), (1, 1));
        assert_eq!(m.core.stats.data_delivered, 1);
    }

    #[test]
    fn out_of_order_data_is_nacked() {
        let mut m = mcp_at(1);
        let out = m.handle_wire_packet(data_pkt(3), false, SimTime::ZERO);
        assert!(out.iter().any(|o| matches!(
            o,
            McpOutput::Transmit { pkt, .. } if matches!(pkt.kind, PacketKind::Nack { expected: 0 })
        )));
        assert!(!out.iter().any(|o| matches!(o, McpOutput::HostEvent { .. })));
    }

    #[test]
    fn duplicate_data_is_reacked_not_redelivered() {
        let mut m = mcp_at(1);
        m.handle_wire_packet(data_pkt(0), false, SimTime::ZERO);
        let out = m.handle_wire_packet(data_pkt(0), false, SimTime::from_us(1));
        assert_eq!(m.core.stats.dup_drops, 1);
        assert!(out.iter().any(|o| matches!(
            o,
            McpOutput::Transmit { pkt, .. } if matches!(pkt.kind, PacketKind::Ack { ack: 1 })
        )));
        assert_eq!(m.core.stats.data_delivered, 1);
    }

    #[test]
    fn corrupted_packet_burns_time_and_vanishes() {
        let mut m = mcp_at(1);
        let before = m.core.hw.cpu.busy_until();
        let out = m.handle_wire_packet(data_pkt(0), true, SimTime::ZERO);
        assert!(out.is_empty());
        assert_eq!(m.core.stats.crc_drops, 1);
        assert!(m.core.hw.cpu.busy_until() > before);
    }

    #[test]
    fn closed_port_data_is_refused_with_nack() {
        let mut m = mcp_at(1);
        let mut pkt = data_pkt(0);
        pkt.dst.port = PortId(5); // never opened
        let out = m.handle_wire_packet(pkt, false, SimTime::ZERO);
        assert_eq!(m.core.stats.rnr_refusals, 1);
        assert!(out.iter().any(|o| matches!(
            o,
            McpOutput::Transmit { pkt, .. } if matches!(pkt.kind, PacketKind::Nack { expected: 0 })
        )));
        // Window must not advance: the retransmission is still acceptable.
        assert_eq!(m.core.conn(NodeId(0)).ack_value(), 0);
    }

    #[test]
    fn ack_returns_send_token_and_clears_flight() {
        // Sender side: send one message, then absorb the ack for it.
        let mut m = mcp_at(0);
        let tokens_before = m.core.port(PortId(1)).send_tokens();
        m.core.port_mut(PortId(1)).take_send_token();
        m.handle_send_token(
            SendToken::Data {
                src_port: PortId(1),
                dst: GlobalPort::new(1, 1),
                len: 8,
                tag: 0,
                notify: false,
            },
            SimTime::ZERO,
        );
        assert_eq!(m.core.conn(NodeId(1)).in_flight(), 1);
        let ack = Packet {
            src: GlobalPort::new(1, 0),
            dst: GlobalPort::new(0, 0),
            kind: PacketKind::Ack { ack: 1 },
        };
        let out = m.handle_wire_packet(ack, false, SimTime::from_us(100));
        assert!(out.is_empty(), "no notify requested");
        assert_eq!(m.core.conn(NodeId(1)).in_flight(), 0);
        assert_eq!(m.core.port(PortId(1)).send_tokens(), tokens_before);
    }

    #[test]
    fn nack_triggers_go_back_n_retransmission() {
        let mut m = mcp_at(0);
        for _ in 0..3 {
            m.handle_send_token(
                SendToken::Data {
                    src_port: PortId(1),
                    dst: GlobalPort::new(1, 1),
                    len: 8,
                    tag: 0,
                    notify: false,
                },
                SimTime::ZERO,
            );
        }
        let nack = Packet {
            src: GlobalPort::new(1, 0),
            dst: GlobalPort::new(0, 0),
            kind: PacketKind::Nack { expected: 1 },
        };
        let out = m.handle_wire_packet(nack, false, SimTime::from_us(200));
        let resent: Vec<Seq> = out
            .iter()
            .filter_map(|o| match o {
                McpOutput::Transmit { pkt, .. } => pkt.seq(),
                _ => None,
            })
            .collect();
        assert_eq!(resent, [1, 2]);
        assert_eq!(m.core.stats.retx, 2);
    }
}
