//! The Myrinet Control Program (MCP): GM's NIC firmware.
//!
//! "The MCP consists of four state machines called SDMA, SEND, RECV and
//! RDMA" (§4.1, Figure 4). We model each machine as a set of
//! run-to-completion handlers charged in cycles on the shared
//! [`gmsim_lanai::NicProcessor`]:
//!
//! * **SDMA** ([`sdma`]) — polls host send tokens, DMAs payloads into NIC
//!   transmit buffers, prepares packets, and hands collective tokens to the
//!   firmware extension.
//! * **SEND** — dispatches prepared packets and pending acks to the wire
//!   (folded into the transmit helpers here; its per-packet cost is
//!   `send_cycles`).
//! * **RECV** ([`recv`]) — receives worms, classifies them against the
//!   connection sequence space, generates acks/nacks.
//! * **RDMA** — DMAs accepted data and completion events up to host
//!   buffers (the `complete_to_host` helper).
//!
//! Handlers never touch the scheduler; they *return* [`McpOutput`]s with
//! absolute timestamps computed from the hardware resources, and the
//! cluster glue turns those into events. That keeps every state machine
//! unit-testable without a running simulation.

pub mod recv;
pub mod sdma;

use crate::config::GmConfig;
use crate::connection::{Connection, SentEntry};
use crate::events::GmEvent;
use crate::ext::McpExtension;
use crate::ids::{GlobalPort, NodeId, PortId};
use crate::packet::{ExtPacket, Packet, PacketKind};
use crate::port::{new_port_table, PortState};
use gmsim_des::trace::{ComponentId, TracePayload, Tracer, Unit};
use gmsim_des::SimTime;
use gmsim_lanai::NicHardware;

/// An effect the firmware wants the outside world to apply.
#[derive(Debug)]
pub enum McpOutput {
    /// Put `pkt` on the wire at time `at` (or loop it back if the
    /// destination is this NIC).
    Transmit {
        /// Wire injection time (transmit channel becomes busy then).
        at: SimTime,
        /// The packet.
        pkt: Packet,
    },
    /// Deliver `ev` to the host process on `port` at time `at` (the RDMA
    /// into the host buffer completes then).
    HostEvent {
        /// RDMA completion time.
        at: SimTime,
        /// Destination port.
        port: PortId,
        /// The event.
        ev: GmEvent,
    },
    /// Fire `kind` back into the firmware at time `at`.
    Timer {
        /// Expiry time.
        at: SimTime,
        /// What to do on expiry.
        kind: TimerKind,
    },
}

/// Firmware timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmission timeout for the connection to `peer`. One timer per
    /// connection, tracking the *oldest unacknowledged* packet: on expiry
    /// the firmware compares `now` against that packet's deadline and
    /// either re-arms (progress was made since arming — a cheap cancel) or
    /// retransmits with exponential backoff.
    Rto {
        /// Peer NIC of the connection.
        peer: NodeId,
    },
}

/// Firmware counters (per NIC).
#[derive(Debug, Clone, Default)]
pub struct McpStats {
    /// Data packets transmitted (first transmissions).
    pub data_tx: u64,
    /// Extension packets transmitted (first transmissions).
    pub ext_tx: u64,
    /// Packets retransmitted (any kind).
    pub retx: u64,
    /// Acks transmitted.
    pub ack_tx: u64,
    /// Nacks transmitted.
    pub nack_tx: u64,
    /// Data packets delivered to host buffers.
    pub data_delivered: u64,
    /// Packets discarded: CRC failure.
    pub crc_drops: u64,
    /// Packets discarded: duplicate sequence.
    pub dup_drops: u64,
    /// Data packets refused: destination port closed or no receive token.
    pub rnr_refusals: u64,
    /// Host events delivered (all kinds).
    pub host_events: u64,
    /// Genuine RTO expiries (each bumps the connection's backoff level).
    pub rto_backoffs: u64,
    /// RTO timer expiries that found nothing to do (everything acked, or
    /// the deadline moved forward) and were cancelled/re-armed for free.
    pub timer_cancels: u64,
    /// Connections that exhausted their retransmit budget and declared the
    /// peer unreachable.
    pub gave_up: u64,
}

/// Everything the MCP knows except the extension itself. Extensions receive
/// `&mut McpCore`, so the split avoids a double borrow.
pub struct McpCore {
    node: NodeId,
    config: GmConfig,
    /// The NIC hardware this firmware runs on.
    pub hw: NicHardware,
    ports: Vec<PortState>,
    conns: Vec<Connection>,
    /// Counters.
    pub stats: McpStats,
    /// Reusable buffer for acked-entry draining (ack hot path).
    pub(crate) acked_scratch: Vec<SentEntry>,
    tracer: Tracer,
}

impl McpCore {
    /// Firmware state for `node` in a cluster of `cluster_size` nodes.
    pub fn new(node: NodeId, cluster_size: usize, config: GmConfig) -> Self {
        McpCore {
            node,
            config,
            hw: NicHardware::new(config.nic),
            ports: new_port_table(),
            conns: (0..cluster_size)
                .map(|p| Connection::new(NodeId(p)))
                .collect(),
            stats: McpStats::default(),
            acked_scratch: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// This NIC's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Install the cluster's shared trace handle (disabled by default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Record a structured trace event attributed to `unit` of this NIC
    /// (no-op when tracing is disabled).
    #[inline]
    pub fn trace(&self, at: SimTime, unit: Unit, payload: TracePayload) {
        self.tracer.record(
            at,
            ComponentId {
                node: self.node.0 as u32,
                unit,
            },
            payload,
        );
    }

    /// Cluster configuration.
    pub fn config(&self) -> &GmConfig {
        &self.config
    }

    /// Number of nodes in the cluster.
    pub fn cluster_size(&self) -> usize {
        self.conns.len()
    }

    /// Port table entry.
    pub fn port(&self, p: PortId) -> &PortState {
        &self.ports[p.idx()]
    }

    /// Mutable port table entry.
    pub fn port_mut(&mut self, p: PortId) -> &mut PortState {
        &mut self.ports[p.idx()]
    }

    /// Connection to a peer NIC.
    pub fn conn(&self, peer: NodeId) -> &Connection {
        &self.conns[peer.0]
    }

    /// Mutable connection to a peer NIC.
    pub fn conn_mut(&mut self, peer: NodeId) -> &mut Connection {
        &mut self.conns[peer.0]
    }

    /// All connections (post-run health inspection: the testbed scans for
    /// dead peers to surface `PeerUnreachable` as a typed error).
    pub fn connections(&self) -> impl Iterator<Item = &Connection> {
        self.conns.iter()
    }

    /// Current RTO for the connection to `peer`: the base timeout doubled
    /// (`rto_backoff`×) per consecutive genuine timeout, capped at
    /// `rto_max`.
    pub fn rto_for(&self, peer: NodeId) -> SimTime {
        let level = self.conn(peer).backoff_level();
        let base = self.config.retransmit_timeout.as_ns();
        let cap = self.config.rto_max.as_ns();
        let mult = self.config.rto_backoff.max(1) as u64;
        let mut rto = base;
        for _ in 0..level {
            rto = rto.saturating_mul(mult);
            if rto >= cap {
                break;
            }
        }
        SimTime::from_ns(rto.min(cap))
    }

    /// Congestion multiplier for the payload-aware RTO grace. Under a
    /// data-carrying collective every node injects a worm per round, and
    /// in the worst round (a doubling schedule's last step sends rank
    /// distance `cluster/2`) each worm crosses the bisection — so a single
    /// link, and therefore the ack we are waiting on, can legitimately sit
    /// behind up to `cluster/2` worm serializations of traffic that is
    /// *not* ours. The factor is `2 * cluster/2 = cluster`: the bisection
    /// bound, doubled for the round trip. Sub-worst-case traffic just
    /// means the timer re-arms early for free; a genuine loss still stalls
    /// the ack stream and expires.
    fn grace_per_byte_ns(&self) -> f64 {
        let bisection = (self.conns.len() as f64 / 2.0).max(1.0);
        let wire = gmsim_myrinet::LinkSpec::MYRINET_1280;
        2.0 * bisection / wire.bytes_per_ns
    }

    /// Size-aware grace added to every RTO deadline: wire time (scaled by
    /// the fan-in factor, see `McpCore::grace_per_byte_ns`) for the
    /// payload bytes still awaiting acknowledgment on this connection.
    /// Segmented collective payloads legitimately occupy links for
    /// hundreds of microseconds per round; a deadline blind to that
    /// backlog would misread wormhole occupancy as loss, and the
    /// go-back-N recovery would re-inject the very worms that caused the
    /// stall (a retransmission storm). Zero-payload barrier traffic adds
    /// zero grace, leaving the calibrated base RTO in charge.
    pub fn ack_grace(&self, peer: NodeId) -> SimTime {
        let bytes = self.conn(peer).unacked_payload_bytes();
        if bytes == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_ns((bytes as f64 * self.grace_per_byte_ns()).ceil() as u64)
    }

    /// The whole-NIC variant of [`McpCore::ack_grace`]: wire time for every
    /// unacked byte across *all* connections. Worms to different peers
    /// share this NIC's egress link, so a burst of sends (e.g. the tail
    /// rounds of a scan, which receive nothing between sends) delays the
    /// oldest ACK by the full backlog, not just this connection's share.
    /// Only the lazy timer-expiry path pays the O(connections) scan; timer
    /// arming uses the cheap per-connection grace, and an early fire
    /// re-arms at the live deadline for free.
    pub fn ack_grace_total(&self) -> SimTime {
        let bytes: u64 = self.conns.iter().map(|c| c.unacked_payload_bytes()).sum();
        if bytes == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_ns((bytes as f64 * self.grace_per_byte_ns()).ceil() as u64)
    }

    /// Arm the connection's single RTO timer if it is not already pending
    /// (and the connection has not given up). The deadline tracks the
    /// oldest unacknowledged packet.
    pub(crate) fn arm_rto_timer(&mut self, peer: NodeId, out: &mut Vec<McpOutput>) {
        let conn = self.conn(peer);
        if conn.timer_armed() || conn.is_dead() {
            return;
        }
        let Some(oldest) = conn.oldest_unacked() else {
            return;
        };
        let deadline = oldest.sent_at + self.rto_for(peer) + self.ack_grace(peer);
        self.conn_mut(peer).set_timer_armed(true);
        out.push(McpOutput::Timer {
            at: deadline,
            kind: TimerKind::Rto { peer },
        });
    }

    /// Charge `cycles` on the NIC processor starting no earlier than
    /// `earliest`; returns the completion time.
    pub fn exec(&mut self, cycles: u64, earliest: SimTime) -> SimTime {
        self.hw.cpu.run(cycles, earliest).1
    }

    /// Transmit a reliable packet: charge the SEND machine, record it on
    /// the connection, and make sure the connection's (single) RTO timer is
    /// armed. Follow-up packets on a connection whose timer is already
    /// pending add no timer event — scheduler occupancy stays O(connections)
    /// no matter how deep the window or how many retransmissions occur.
    pub(crate) fn transmit_reliable(
        &mut self,
        pkt: Packet,
        ready: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let send_cycles = self.config.nic.costs.send_cycles;
        let at = self.exec(send_cycles, ready);
        let peer = pkt.dst.node;
        debug_assert!(pkt.seq().is_some(), "reliable packet without seq");
        self.conn_mut(peer).record_sent(pkt, at);
        self.arm_rto_timer(peer, out);
        out.push(McpOutput::Transmit { at, pkt });
    }

    /// Transmit a control packet (ack/nack/unreliable ext): charge the
    /// SEND machine only.
    pub(crate) fn transmit_control(
        &mut self,
        pkt: Packet,
        ready: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let send_cycles = self.config.nic.costs.send_cycles;
        let at = self.exec(send_cycles, ready);
        out.push(McpOutput::Transmit { at, pkt });
    }

    /// Extension helper: send an extension packet from `src_port` on this
    /// NIC to `dst`, honouring the configured collective wire mode. Barrier
    /// messages never touch host memory — this is the heart of the paper's
    /// latency win.
    pub fn send_ext(
        &mut self,
        src_port: PortId,
        dst: GlobalPort,
        body: ExtPacket,
        ready: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let src = GlobalPort {
            node: self.node,
            port: src_port,
        };
        self.stats.ext_tx += 1;
        match self.config.collective_wire {
            crate::config::CollectiveWireMode::Reliable => {
                let seq = self.conn_mut(dst.node).assign_seq();
                let pkt = Packet {
                    src,
                    dst,
                    kind: PacketKind::Ext {
                        seq: Some(seq),
                        body,
                    },
                };
                self.transmit_reliable(pkt, ready, out);
            }
            crate::config::CollectiveWireMode::Unreliable => {
                let pkt = Packet {
                    src,
                    dst,
                    kind: PacketKind::Ext { seq: None, body },
                };
                self.transmit_control(pkt, ready, out);
            }
        }
    }

    /// Extension/core helper: deliver a completion event to the host
    /// process on `port` through the RDMA machine.
    pub fn complete_to_host(
        &mut self,
        port: PortId,
        ev: GmEvent,
        ready: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        let rdma_cycles = self.config.nic.costs.rdma_cycles;
        let t = self.exec(rdma_cycles, ready);
        let done = self.hw.rdma.begin(ev.rdma_bytes(), t);
        self.stats.host_events += 1;
        self.trace(
            done,
            Unit::Rdma,
            TracePayload::CompletionDma {
                port: port.0,
                bytes: ev.rdma_bytes() as u32,
            },
        );
        out.push(McpOutput::HostEvent { at: done, port, ev });
    }
}

/// The complete firmware: core state plus the installed extension.
pub struct Mcp {
    /// Core state machines and hardware.
    pub core: McpCore,
    ext: Box<dyn McpExtension>,
}

impl Mcp {
    /// Firmware with `ext` installed.
    pub fn new(core: McpCore, ext: Box<dyn McpExtension>) -> Self {
        Mcp { core, ext }
    }

    /// The installed extension (for post-run inspection in tests).
    pub fn ext(&self) -> &dyn McpExtension {
        self.ext.as_ref()
    }

    /// A process opens `port`.
    pub fn open_port(&mut self, port: PortId, now: SimTime) -> Vec<McpOutput> {
        let mut out = Vec::new();
        self.open_port_into(port, now, &mut out);
        out
    }

    /// [`Mcp::open_port`] appending into a caller-owned buffer (hot path).
    pub fn open_port_into(&mut self, port: PortId, now: SimTime, out: &mut Vec<McpOutput>) {
        let (st, rt) = (
            self.core.config.send_tokens_per_port,
            self.core.config.recv_tokens_per_port,
        );
        self.core.port_mut(port).open(st, rt);
        self.ext.on_port_open(&mut self.core, port, now, out);
    }

    /// The process on `port` exits.
    pub fn close_port(&mut self, port: PortId, now: SimTime) -> Vec<McpOutput> {
        let mut out = Vec::new();
        self.close_port_into(port, now, &mut out);
        out
    }

    /// [`Mcp::close_port`] appending into a caller-owned buffer (hot path).
    pub fn close_port_into(&mut self, port: PortId, now: SimTime, out: &mut Vec<McpOutput>) {
        self.core.port_mut(port).close();
        self.ext.on_port_close(&mut self.core, port, now, out);
    }

    /// Retransmission timer expiry.
    pub fn handle_timer(&mut self, kind: TimerKind, now: SimTime) -> Vec<McpOutput> {
        let mut out = Vec::new();
        self.handle_timer_into(kind, now, &mut out);
        out
    }

    /// [`Mcp::handle_timer`] appending into a caller-owned buffer (hot
    /// path: cancelled expiries dominate and produce at most a re-arm).
    ///
    /// The expiry logic is TCP-style lazy evaluation: the pending timer may
    /// predate acks or retransmissions, so on expiry the firmware recomputes
    /// the oldest-unacked deadline. An early fire re-arms at the true
    /// deadline without charging the NIC processor (so fault-free hardware
    /// state is untouched); a genuine expiry backs off the RTO, retransmits
    /// go-back-N from the oldest packet, and — once the retransmit budget is
    /// gone — declares the peer unreachable, reclaims send tokens, and
    /// notifies every affected open port.
    pub fn handle_timer_into(&mut self, kind: TimerKind, now: SimTime, out: &mut Vec<McpOutput>) {
        match kind {
            TimerKind::Rto { peer } => {
                self.core.conn_mut(peer).set_timer_armed(false);
                if self.core.conn(peer).is_dead() {
                    return;
                }
                let Some(oldest) = self.core.conn(peer).oldest_unacked().copied() else {
                    // Everything acked since arming: a free cancel.
                    self.core.stats.timer_cancels += 1;
                    return;
                };
                // The deadline anchors on the later of the oldest unacked
                // transmission and the peer's last sign of life: congestion
                // slows the ack stream without stopping it, so each arrival
                // restarts the clock (RFC 6298 style). A real loss stalls
                // acks entirely and still expires one RTO later.
                let anchor = oldest
                    .sent_at
                    .max(self.core.conn(peer).last_peer_activity());
                let deadline = anchor + self.core.rto_for(peer) + self.core.ack_grace_total();
                if now < deadline {
                    // Progress since arming: re-arm at the real deadline.
                    self.core.stats.timer_cancels += 1;
                    self.core.conn_mut(peer).set_timer_armed(true);
                    out.push(McpOutput::Timer { at: deadline, kind });
                    return;
                }
                self.core.conn_mut(peer).note_timeout_attempt();
                if self.core.conn(peer).attempts() > self.core.config.retransmit_budget {
                    self.give_up(peer, now, out);
                    return;
                }
                self.core.stats.rto_backoffs += 1;
                let from = oldest.packet.seq().unwrap();
                let again = self.core.conn_mut(peer).on_nack(from, now);
                self.core.stats.retx += again.len() as u64;
                self.core.trace(
                    now,
                    Unit::Send,
                    TracePayload::Timeout {
                        peer: peer.0 as u32,
                    },
                );
                let mut last_at = now;
                for pkt in again {
                    let send_cycles = self.core.config.nic.costs.send_cycles;
                    let at = self.core.exec(send_cycles, now);
                    // Refresh the connection's record of when this packet
                    // went out so the next deadline computation is live.
                    self.core
                        .conn_mut(peer)
                        .refresh_sent_at(pkt.seq().unwrap(), at);
                    self.core.trace(
                        at,
                        Unit::Send,
                        TracePayload::Retransmit {
                            peer: peer.0 as u32,
                        },
                    );
                    out.push(McpOutput::Transmit { at, pkt });
                    last_at = at;
                }
                // One timer, re-armed with the backed-off RTO.
                self.core.conn_mut(peer).set_timer_armed(true);
                out.push(McpOutput::Timer {
                    at: last_at + self.core.rto_for(peer),
                    kind,
                });
            }
        }
    }

    /// Retransmit budget exhausted: kill the connection, reclaim the send
    /// tokens of abandoned data packets, and deliver `PeerUnreachable` to
    /// each distinct open port that had traffic in flight to `peer`.
    fn give_up(&mut self, peer: NodeId, now: SimTime, out: &mut Vec<McpOutput>) {
        self.core.stats.gave_up += 1;
        self.core.trace(
            now,
            Unit::Send,
            TracePayload::GaveUp {
                peer: peer.0 as u32,
            },
        );
        let abandoned = self.core.conn_mut(peer).mark_dead();
        let mut notified: Vec<PortId> = Vec::new();
        for entry in abandoned {
            let port = entry.packet.src.port;
            if matches!(entry.packet.kind, PacketKind::Data { .. }) {
                self.core.port_mut(port).return_send_token();
            }
            if !notified.contains(&port) && self.core.port(port).is_open() {
                notified.push(port);
                self.core
                    .complete_to_host(port, GmEvent::PeerUnreachable { peer }, now, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::NullExtension;
    use crate::ids::TeamId;

    fn core() -> McpCore {
        McpCore::new(NodeId(0), 4, GmConfig::default())
    }

    #[test]
    fn exec_charges_the_processor() {
        let mut c = core();
        let t1 = c.exec(33, SimTime::ZERO);
        let t2 = c.exec(33, SimTime::ZERO);
        assert!(t2 > t1, "handlers serialize on the NIC cpu");
    }

    #[test]
    fn complete_to_host_emits_host_event() {
        let mut c = core();
        let mut out = Vec::new();
        c.complete_to_host(
            PortId(1),
            GmEvent::BarrierComplete {
                team: TeamId::GLOBAL,
            },
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        match &out[0] {
            McpOutput::HostEvent { at, port, ev } => {
                assert!(*at > SimTime::ZERO, "RDMA takes time");
                assert_eq!(*port, PortId(1));
                assert_eq!(
                    *ev,
                    GmEvent::BarrierComplete {
                        team: TeamId::GLOBAL
                    }
                );
            }
            other => panic!("unexpected output {other:?}"),
        }
        assert_eq!(c.stats.host_events, 1);
    }

    #[test]
    fn send_ext_reliable_arms_timer() {
        let mut c = core();
        let mut out = Vec::new();
        let body = ExtPacket::new(1, 0, 0);
        c.send_ext(
            PortId(1),
            GlobalPort::new(2, 1),
            body,
            SimTime::ZERO,
            &mut out,
        );
        assert!(matches!(out[0], McpOutput::Timer { .. }));
        assert!(matches!(out[1], McpOutput::Transmit { .. }));
        assert_eq!(c.conn(NodeId(2)).in_flight(), 1);
    }

    #[test]
    fn send_ext_unreliable_skips_connection() {
        let cfg = GmConfig {
            collective_wire: crate::config::CollectiveWireMode::Unreliable,
            ..GmConfig::default()
        };
        let mut c = McpCore::new(NodeId(0), 4, cfg);
        let mut out = Vec::new();
        let body = ExtPacket::new(1, 0, 0);
        c.send_ext(
            PortId(1),
            GlobalPort::new(2, 1),
            body,
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(out.len(), 1, "no timer in unreliable mode");
        assert!(matches!(out[0], McpOutput::Transmit { .. }));
        assert_eq!(c.conn(NodeId(2)).in_flight(), 0);
    }

    #[test]
    fn open_close_roundtrip() {
        let mut m = Mcp::new(core(), Box::new(NullExtension));
        let out = m.open_port(PortId(2), SimTime::ZERO);
        assert!(out.is_empty());
        assert!(m.core.port(PortId(2)).is_open());
        m.close_port(PortId(2), SimTime::ZERO);
        assert!(!m.core.port(PortId(2)).is_open());
    }

    #[test]
    fn stale_timer_is_noop() {
        let mut m = Mcp::new(core(), Box::new(NullExtension));
        let out = m.handle_timer(TimerKind::Rto { peer: NodeId(1) }, SimTime::from_ms(1));
        assert!(out.is_empty());
        assert_eq!(m.core.stats.timer_cancels, 1);
    }

    #[test]
    fn second_reliable_send_arms_no_extra_timer() {
        let mut c = core();
        let body = ExtPacket::new(1, 0, 0);
        let mut out = Vec::new();
        c.send_ext(
            PortId(1),
            GlobalPort::new(2, 1),
            body,
            SimTime::ZERO,
            &mut out,
        );
        let timers = |v: &Vec<McpOutput>| {
            v.iter()
                .filter(|o| matches!(o, McpOutput::Timer { .. }))
                .count()
        };
        assert_eq!(timers(&out), 1);
        let mut out2 = Vec::new();
        c.send_ext(
            PortId(1),
            GlobalPort::new(2, 1),
            body,
            SimTime::ZERO,
            &mut out2,
        );
        assert_eq!(timers(&out2), 0, "per-connection timer already pending");
        assert_eq!(c.conn(NodeId(2)).in_flight(), 2);
    }

    #[test]
    fn backoff_doubles_rto_up_to_cap() {
        let mut c = core();
        let base = c.config().retransmit_timeout;
        assert_eq!(c.rto_for(NodeId(1)), base);
        c.conn_mut(NodeId(1)).note_timeout_attempt();
        assert_eq!(c.rto_for(NodeId(1)), base * 2);
        c.conn_mut(NodeId(1)).note_timeout_attempt();
        assert_eq!(c.rto_for(NodeId(1)), base * 4);
        for _ in 0..20 {
            c.conn_mut(NodeId(1)).note_timeout_attempt();
        }
        assert_eq!(c.rto_for(NodeId(1)), c.config().rto_max);
    }

    #[test]
    fn early_fire_rearms_without_charging_cpu() {
        let mut m = Mcp::new(core(), Box::new(NullExtension));
        m.open_port(PortId(1), SimTime::ZERO);
        let body = ExtPacket::new(1, 0, 0);
        let mut out = Vec::new();
        m.core.send_ext(
            PortId(1),
            GlobalPort::new(2, 1),
            body,
            SimTime::ZERO,
            &mut out,
        );
        let deadline = match out[0] {
            McpOutput::Timer { at, .. } => at,
            _ => panic!("expected timer first"),
        };
        // Ack arrives conceptually late; fire the timer early instead:
        // refresh the oldest entry so the deadline moved forward.
        m.core
            .conn_mut(NodeId(2))
            .refresh_sent_at(0, SimTime::from_us(100));
        let cpu_before = m.core.exec(0, SimTime::ZERO);
        let out2 = m.handle_timer(TimerKind::Rto { peer: NodeId(2) }, deadline);
        assert_eq!(out2.len(), 1, "re-arm only");
        match out2[0] {
            McpOutput::Timer { at, .. } => assert!(at > deadline),
            ref other => panic!("unexpected output {other:?}"),
        }
        let cpu_after = m.core.exec(0, SimTime::ZERO);
        assert_eq!(cpu_before, cpu_after, "early fire must not charge the cpu");
        assert_eq!(m.core.stats.timer_cancels, 1);
    }

    #[test]
    fn budget_exhaustion_reports_peer_unreachable() {
        let mut m = Mcp::new(core(), Box::new(NullExtension));
        m.open_port(PortId(1), SimTime::ZERO);
        let body = ExtPacket::new(1, 0, 0);
        let mut out = Vec::new();
        m.core.send_ext(
            PortId(1),
            GlobalPort::new(2, 1),
            body,
            SimTime::ZERO,
            &mut out,
        );
        let budget = m.core.config().retransmit_budget;
        let mut now = SimTime::from_ms(10);
        let mut unreachable = Vec::new();
        for _ in 0..=budget {
            let outs = m.handle_timer(TimerKind::Rto { peer: NodeId(2) }, now);
            for o in outs {
                match o {
                    McpOutput::Timer { at, .. } => now = at.max(now + SimTime::from_ms(1)),
                    McpOutput::HostEvent { ev, port, .. } => unreachable.push((port, ev)),
                    McpOutput::Transmit { .. } => {}
                }
            }
            now += SimTime::from_ms(1);
        }
        assert!(m.core.conn(NodeId(2)).is_dead());
        assert_eq!(m.core.stats.gave_up, 1);
        assert_eq!(
            unreachable,
            [(PortId(1), GmEvent::PeerUnreachable { peer: NodeId(2) })]
        );
        // Dead connection: further timers and sends are inert.
        assert!(m
            .handle_timer(TimerKind::Rto { peer: NodeId(2) }, now)
            .is_empty());
    }
}
