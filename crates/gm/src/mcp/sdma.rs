//! The SDMA state machine: host send tokens → prepared packets.
//!
//! "The SDMA state machine polls for new send tokens and queues them on the
//! queue for the appropriate connection. The SDMA state machine is also
//! responsible for initiating a DMA to transfer data for the message from
//! the host memory to the transmit buffers in the NIC and to prepare the
//! packet for transmission" (§4.1).
//!
//! Collective tokens take a different path: there is no payload to DMA —
//! the descriptor *is* the token — so the SDMA machine hands them straight
//! to the firmware extension (§5.2: "the `gm_barrier_send_with_callback()`
//! function creates a send token with the node list and passes it to the
//! token queue on the NIC").

use super::{Mcp, McpOutput};
use crate::ids::GlobalPort;
use crate::packet::{Packet, PacketKind};
use crate::token::SendToken;
use gmsim_des::trace::{TracePayload, Unit};
use gmsim_des::SimTime;

impl Mcp {
    /// The SDMA machine detects a send token queued by the host at `now`.
    pub fn handle_send_token(&mut self, token: SendToken, now: SimTime) -> Vec<McpOutput> {
        let mut out = Vec::new();
        self.handle_send_token_into(token, now, &mut out);
        out
    }

    /// [`Mcp::handle_send_token`] appending into a caller-owned buffer
    /// (hot path).
    pub fn handle_send_token_into(
        &mut self,
        token: SendToken,
        now: SimTime,
        out: &mut Vec<McpOutput>,
    ) {
        match token {
            SendToken::Data {
                src_port,
                dst,
                len,
                tag,
                notify,
            } => {
                debug_assert!(
                    self.core.port(src_port).is_open(),
                    "send token on closed port"
                );
                self.core.trace(
                    now,
                    Unit::Sdma,
                    TracePayload::SendTokenPost {
                        port: src_port.0,
                        collective: false,
                    },
                );
                // SDMA handler: program the DMA, build headers.
                let costs = self.core.config().nic.costs;
                let t = self.core.exec(costs.sdma_cycles, now);
                // Payload DMA from pinned host memory to NIC tx buffer.
                let dma_done = self.core.hw.sdma.begin(len, t);
                self.core
                    .trace(t, Unit::Sdma, TracePayload::SdmaStart { bytes: len as u32 });
                self.core.trace(
                    dma_done,
                    Unit::Sdma,
                    TracePayload::SdmaFinish { bytes: len as u32 },
                );
                // Packet prepared: assign a sequence and hand to SEND.
                let seq = self.core.conn_mut(dst.node).assign_seq();
                let pkt = Packet {
                    src: GlobalPort {
                        node: self.core.node(),
                        port: src_port,
                    },
                    dst,
                    kind: PacketKind::Data {
                        seq,
                        len,
                        tag,
                        notify,
                    },
                };
                self.core.stats.data_tx += 1;
                self.core.transmit_reliable(pkt, dma_done, out);
            }
            SendToken::Collective { src_port, token } => {
                debug_assert!(
                    self.core.port(src_port).is_open(),
                    "collective token on closed port"
                );
                self.core.trace(
                    now,
                    Unit::Sdma,
                    TracePayload::SendTokenPost {
                        port: src_port.0,
                        collective: true,
                    },
                );
                // No payload DMA: the descriptor was written with the token.
                // The extension charges its own processing cycles.
                self.ext
                    .on_collective_token(&mut self.core, src_port, token, now, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GmConfig;
    use crate::ext::NullExtension;
    use crate::ids::{NodeId, PortId};
    use crate::mcp::McpCore;

    fn mcp() -> Mcp {
        let mut m = Mcp::new(
            McpCore::new(NodeId(0), 4, GmConfig::default()),
            Box::new(NullExtension),
        );
        m.open_port(PortId(1), SimTime::ZERO);
        m
    }

    fn data_token(len: usize) -> SendToken {
        SendToken::Data {
            src_port: PortId(1),
            dst: GlobalPort::new(1, 1),
            len,
            tag: 42,
            notify: false,
        }
    }

    #[test]
    fn data_token_becomes_reliable_transmit() {
        let mut m = mcp();
        let out = m.handle_send_token(data_token(64), SimTime::ZERO);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], McpOutput::Timer { .. }));
        let McpOutput::Transmit { at, pkt } = &out[1] else {
            panic!("expected transmit");
        };
        assert!(*at > SimTime::ZERO, "SDMA + DMA take time");
        assert_eq!(pkt.seq(), Some(0));
        assert_eq!(pkt.payload_bytes(), 64);
        assert_eq!(m.core.conn(NodeId(1)).in_flight(), 1);
        assert_eq!(m.core.stats.data_tx, 1);
    }

    #[test]
    fn consecutive_sends_get_increasing_seqs_and_serialize() {
        let mut m = mcp();
        let o1 = m.handle_send_token(data_token(64), SimTime::ZERO);
        // The second send finds the per-connection RTO timer already armed,
        // so its output is just the transmit.
        let o2 = m.handle_send_token(data_token(64), SimTime::ZERO);
        assert_eq!(o2.len(), 1);
        let at = |o: &[McpOutput]| {
            o.iter()
                .find_map(|x| match x {
                    McpOutput::Transmit { at, pkt } => Some((*at, pkt.seq().unwrap())),
                    _ => None,
                })
                .expect("transmit")
        };
        let (t1, s1) = at(&o1);
        let (t2, s2) = at(&o2);
        assert!(t2 > t1, "NIC resources serialize the two sends");
        assert_eq!((s1, s2), (0, 1));
    }

    #[test]
    fn payload_size_increases_dma_time() {
        let mut small = mcp();
        let mut big = mcp();
        let t = |o: &[McpOutput]| match &o[1] {
            McpOutput::Transmit { at, .. } => *at,
            _ => panic!(),
        };
        let ts = t(&small.handle_send_token(data_token(8), SimTime::ZERO));
        let tb = t(&big.handle_send_token(data_token(65_536), SimTime::ZERO));
        assert!(tb > ts);
    }

    #[test]
    #[should_panic(expected = "no firmware extension")]
    fn collective_without_extension_panics() {
        let mut m = mcp();
        let token = crate::token::CollectiveToken::new(crate::ir::CollectiveSchedule::new(
            vec![],
            crate::ir::TokenCharge::Light,
        ));
        m.handle_send_token(
            SendToken::Collective {
                src_port: PortId(1),
                token,
            },
            SimTime::ZERO,
        );
    }
}
