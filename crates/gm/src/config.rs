//! Cluster-wide configuration knobs.

use gmsim_des::SimTime;
use gmsim_lanai::NicModel;

/// How collective (barrier) packets travel the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveWireMode {
    /// Inside the per-connection reliable, ordered stream — the §3.3 design
    /// the paper adopts, preserving barrier/non-barrier ordering.
    Reliable,
    /// Fire-and-forget, as in the paper's measured prototype ("our current
    /// implementation, which uses unreliable barrier packets", §4.4). Kept
    /// for the reliability-overhead ablation; safe only on a fault-free
    /// fabric.
    Unreliable,
}

/// Configuration for a GM cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmConfig {
    /// NIC hardware model on every node.
    pub nic: NicModel,
    /// Host overhead from a process initiating a send until the NIC can
    /// detect the token (the paper's *Send* term).
    pub host_send_overhead: SimTime,
    /// Host overhead to process one returned event (the paper's *HRecv*).
    pub host_recv_overhead: SimTime,
    /// Send tokens a port holds when opened.
    pub send_tokens_per_port: u32,
    /// Receive tokens a port holds when opened (implicitly re-provided by
    /// the modelled process after each receive, unless a workload says
    /// otherwise).
    pub recv_tokens_per_port: u32,
    /// Base retransmission timeout for unacknowledged reliable packets
    /// (backoff level 0).
    pub retransmit_timeout: SimTime,
    /// Exponential backoff multiplier applied to the RTO per consecutive
    /// genuine timeout (2 doubles it each time; 1 disables backoff).
    pub rto_backoff: u32,
    /// Upper bound on the backed-off RTO.
    pub rto_max: SimTime,
    /// Consecutive timeout-driven retransmission attempts (without forward
    /// progress from the peer) before the connection gives up and reports
    /// the peer unreachable.
    pub retransmit_budget: u32,
    /// Collective wire mode (see [`CollectiveWireMode`]).
    pub collective_wire: CollectiveWireMode,
    /// §3.4 optimization: co-located barrier participants complete through
    /// a NIC-local flag instead of a wire message.
    pub same_nic_optimization: bool,
}

impl GmConfig {
    /// The paper's testbed host: dual 300 MHz Pentium II running the GM
    /// library. Overheads per DESIGN.md §9 calibration.
    pub fn paper_host(nic: NicModel) -> Self {
        GmConfig {
            nic,
            host_send_overhead: SimTime::from_ns(8_000),
            host_recv_overhead: SimTime::from_ns(6_800),
            send_tokens_per_port: 16,
            recv_tokens_per_port: 64,
            retransmit_timeout: SimTime::from_ms(2),
            rto_backoff: 2,
            rto_max: SimTime::from_ms(50),
            retransmit_budget: 10,
            collective_wire: CollectiveWireMode::Reliable,
            same_nic_optimization: true,
        }
    }

    /// Scale host overheads by a factor — models an additional programming
    /// layer such as MPI over GM (§2.2: "as the host send overhead
    /// increases ... the factor of improvement will increase").
    pub fn with_layer_overhead(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0);
        self.host_send_overhead =
            SimTime::from_ns((self.host_send_overhead.as_ns() as f64 * factor) as u64);
        self.host_recv_overhead =
            SimTime::from_ns((self.host_recv_overhead.as_ns() as f64 * factor) as u64);
        self
    }
}

impl Default for GmConfig {
    fn default() -> Self {
        GmConfig::paper_host(NicModel::LANAI_4_3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_testbed() {
        let c = GmConfig::default();
        assert_eq!(c.nic.name, "LANai 4.3");
        assert_eq!(c.host_send_overhead, SimTime::from_us(8));
        assert_eq!(c.collective_wire, CollectiveWireMode::Reliable);
    }

    #[test]
    fn layer_overhead_scales_host_terms_only() {
        let base = GmConfig::default();
        let mpi = base.with_layer_overhead(2.0);
        assert_eq!(mpi.host_send_overhead, base.host_send_overhead * 2);
        assert_eq!(mpi.host_recv_overhead, base.host_recv_overhead * 2);
        assert_eq!(mpi.nic, base.nic);
    }

    #[test]
    #[should_panic]
    fn layer_overhead_below_one_rejected() {
        let _ = GmConfig::default().with_layer_overhead(0.5);
    }
}
