//! Per-port NIC state.
//!
//! A port is the OS-bypass endpoint a process opens (§4.1). The NIC keeps a
//! small structure per port; the paper's barrier adds "a pointer in the port
//! data structure to this send token" — that pointer lives in the firmware
//! *extension's* per-port state, while this module models what stock GM
//! tracks: open/closed lifecycle, an epoch to tell one owner from the next
//! (the §3.2 process A / process A′ problem), and token counts.

use crate::ids::GM_NUM_PORTS;

/// NIC-side state of one port.
#[derive(Debug, Clone)]
pub struct PortState {
    open: bool,
    /// Bumped on every open; lets the firmware reject stale traffic that
    /// was addressed to a previous owner of the same port index.
    epoch: u32,
    send_tokens: u32,
    recv_tokens: u32,
    /// Buffers provided via the paper's `gm_provide_barrier_buffer()`:
    /// each collective completion event DMAs into one.
    barrier_buffers: u32,
}

impl PortState {
    /// A closed port that has never been opened.
    pub fn closed() -> Self {
        PortState {
            open: false,
            epoch: 0,
            send_tokens: 0,
            recv_tokens: 0,
            barrier_buffers: 0,
        }
    }

    /// Open the port for a new owner with fresh token allowances.
    pub fn open(&mut self, send_tokens: u32, recv_tokens: u32) {
        assert!(!self.open, "double open");
        self.open = true;
        self.epoch += 1;
        self.send_tokens = send_tokens;
        self.recv_tokens = recv_tokens;
    }

    /// Close the port (owner exited).
    pub fn close(&mut self) {
        assert!(self.open, "closing a closed port");
        self.open = false;
        self.send_tokens = 0;
        self.recv_tokens = 0;
        self.barrier_buffers = 0;
    }

    /// Whether a process currently owns the port.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Current owner generation (0 = never opened).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Try to consume a send token; `false` when none remain (the process
    /// must wait for sends to complete).
    pub fn take_send_token(&mut self) -> bool {
        if self.send_tokens == 0 {
            return false;
        }
        self.send_tokens -= 1;
        true
    }

    /// Return a send token after the send event completes.
    pub fn return_send_token(&mut self) {
        self.send_tokens += 1;
    }

    /// Try to consume a receive token (a host buffer); `false` when the
    /// process has provided none.
    pub fn take_recv_token(&mut self) -> bool {
        if self.recv_tokens == 0 {
            return false;
        }
        self.recv_tokens -= 1;
        true
    }

    /// The process provided one more receive buffer.
    pub fn provide_recv_token(&mut self) {
        self.recv_tokens += 1;
    }

    /// `gm_provide_barrier_buffer()`: the process supplies a buffer for
    /// one collective completion event.
    pub fn provide_barrier_buffer(&mut self) {
        self.barrier_buffers += 1;
    }

    /// Consume a barrier buffer for a completion DMA.
    ///
    /// # Panics
    /// Panics if none was provided — the paper's API contract requires
    /// `gm_provide_barrier_buffer()` before each barrier initiation.
    pub fn take_barrier_buffer(&mut self) {
        assert!(
            self.barrier_buffers > 0,
            "collective completed with no barrier buffer provided"
        );
        self.barrier_buffers -= 1;
    }

    /// Barrier buffers currently provided.
    pub fn barrier_buffers(&self) -> u32 {
        self.barrier_buffers
    }

    /// Remaining send tokens.
    pub fn send_tokens(&self) -> u32 {
        self.send_tokens
    }

    /// Remaining receive tokens.
    pub fn recv_tokens(&self) -> u32 {
        self.recv_tokens
    }
}

/// The full port table of one NIC.
pub fn new_port_table() -> Vec<PortState> {
    (0..GM_NUM_PORTS).map(|_| PortState::closed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_epochs() {
        let mut p = PortState::closed();
        assert!(!p.is_open());
        assert_eq!(p.epoch(), 0);
        p.open(4, 4);
        assert!(p.is_open());
        assert_eq!(p.epoch(), 1);
        p.close();
        p.open(4, 4);
        assert_eq!(p.epoch(), 2, "reopening bumps the epoch");
    }

    #[test]
    #[should_panic(expected = "double open")]
    fn double_open_panics() {
        let mut p = PortState::closed();
        p.open(1, 1);
        p.open(1, 1);
    }

    #[test]
    fn send_tokens_are_finite() {
        let mut p = PortState::closed();
        p.open(2, 0);
        assert!(p.take_send_token());
        assert!(p.take_send_token());
        assert!(!p.take_send_token());
        p.return_send_token();
        assert!(p.take_send_token());
    }

    #[test]
    fn recv_tokens_gate_delivery() {
        let mut p = PortState::closed();
        p.open(0, 1);
        assert!(p.take_recv_token());
        assert!(!p.take_recv_token());
        p.provide_recv_token();
        assert_eq!(p.recv_tokens(), 1);
    }

    #[test]
    fn closing_forfeits_tokens() {
        let mut p = PortState::closed();
        p.open(3, 3);
        p.provide_barrier_buffer();
        p.close();
        assert_eq!(p.send_tokens(), 0);
        assert_eq!(p.recv_tokens(), 0);
        assert_eq!(p.barrier_buffers(), 0);
    }

    #[test]
    fn barrier_buffers_count() {
        let mut p = PortState::closed();
        p.open(1, 1);
        p.provide_barrier_buffer();
        p.provide_barrier_buffer();
        assert_eq!(p.barrier_buffers(), 2);
        p.take_barrier_buffer();
        assert_eq!(p.barrier_buffers(), 1);
    }

    #[test]
    #[should_panic(expected = "no barrier buffer")]
    fn completion_without_buffer_panics() {
        let mut p = PortState::closed();
        p.open(1, 1);
        p.take_barrier_buffer();
    }

    #[test]
    fn table_has_eight_ports() {
        assert_eq!(new_port_table().len(), 8);
    }
}
