//! Cluster assembly and event glue.
//!
//! A [`Cluster`] is N nodes (host + NIC firmware) over a Myrinet
//! [`Fabric`], simulated as the world of a [`gmsim_des::Simulation`]. The
//! glue in this module is the *only* place where MCP outputs, host actions
//! and fabric deliveries become scheduled events — every other module stays
//! a pure state machine.

use crate::config::GmConfig;
use crate::events::GmEvent;
use crate::ext::{McpExtension, NullExtension};
use crate::host::{Host, HostAction, HostCtx, HostProgram};
use crate::ids::{GlobalPort, NodeId, PortId};
use crate::mcp::{Mcp, McpCore, McpOutput, TimerKind};
use crate::packet::Packet;
use crate::token::SendToken;
use gmsim_des::trace::{ComponentId, TracePayload, Tracer, Unit};
use gmsim_des::{BoxedFn, Event, Scheduler, SimTime, Simulation};
use gmsim_myrinet::fault::Fate;
use gmsim_myrinet::{Fabric, FaultPlan, Topology, TopologyBuilder};

/// A timestamped measurement mark emitted by a program via
/// [`HostCtx::note`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoteRecord {
    /// When the mark was recorded.
    pub at: SimTime,
    /// Emitting node.
    pub node: NodeId,
    /// Emitting port.
    pub port: PortId,
    /// Program-defined tag.
    pub tag: u64,
}

/// One cluster node: host processor + NIC firmware + its processes.
pub struct Node {
    /// The host processor.
    pub host: Host,
    /// The NIC firmware (MCP + extension).
    pub mcp: Mcp,
    programs: Vec<Option<Box<dyn HostProgram>>>,
}

impl Node {
    /// The program owning `port`, for post-run inspection.
    pub fn program(&self, port: PortId) -> Option<&dyn HostProgram> {
        self.programs[port.idx()].as_deref()
    }
}

/// The simulated world: all nodes plus the fabric.
pub struct Cluster {
    /// The nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// The Myrinet fabric.
    pub fabric: Fabric,
    /// Structured event trace handle (shared with every NIC's firmware).
    pub tracer: Tracer,
    /// Measurement marks recorded by programs.
    pub notes: Vec<NoteRecord>,
    config: GmConfig,
    /// Reusable [`McpOutput`] buffer for firmware handler calls. Taken at
    /// the top of each glue function and put back drained, so steady-state
    /// events allocate nothing. Handlers never re-enter the glue, so one
    /// buffer suffices.
    mcp_scratch: Vec<McpOutput>,
    /// Reusable [`HostAction`] buffer for program callbacks (same scheme).
    action_scratch: Vec<HostAction>,
}

impl Cluster {
    /// Cluster configuration.
    pub fn config(&self) -> &GmConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Notes with the given tag, in time order.
    pub fn notes_tagged(&self, tag: u64) -> impl Iterator<Item = &NoteRecord> {
        self.notes.iter().filter(move |n| n.tag == tag)
    }
}

/// Where a firing event's effects go: the clock, future events, and wire
/// injections. The glue handlers are generic over this seam so the same
/// monomorphized code drives both execution engines:
///
/// * the serial [`Scheduler`] (a `SerialSink`), where `transmit` walks the
///   fabric immediately and schedules the delivery, and
/// * a parallel logical process (the `par` module), where `schedule` feeds
///   the LP's own queue and `transmit` is *deferred* — recorded and replayed
///   against the fabric in globally serial order at the next window barrier.
pub trait EventSink {
    /// Current virtual time (the firing event's timestamp).
    fn now(&self) -> SimTime;
    /// Schedule a follow-up event at absolute time `at`.
    fn schedule(&mut self, at: SimTime, ev: ClusterEvent);
    /// Put a non-loopback packet on the wire at the current time.
    fn transmit(&mut self, pkt: Packet);
}

/// The serial engine's sink: fabric walks happen inline, follow-ups go to
/// the global scheduler. This reproduces the classic single-queue semantics
/// bit for bit.
struct SerialSink<'a, 'b> {
    fabric: &'a mut Fabric,
    sched: &'b mut ClusterSched,
}

impl EventSink for SerialSink<'_, '_> {
    fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn schedule(&mut self, at: SimTime, ev: ClusterEvent) {
        self.sched.schedule(at, ev);
    }

    fn transmit(&mut self, pkt: Packet) {
        let (src, dst) = (pkt.src.node, pkt.dst.node);
        let delivery =
            self.fabric
                .send(src.nic(), dst.nic(), pkt.payload_bytes(), self.sched.now());
        match delivery.fate {
            Fate::Dropped => {}
            fate => {
                let corrupted = fate == Fate::Corrupted;
                self.sched.schedule(
                    delivery.arrival,
                    ClusterEvent::WireDeliver { pkt, corrupted },
                );
            }
        }
        if let Some(at) = delivery.dup_arrival {
            // Fault-injected duplicate: a second intact copy of the same
            // worm. The receiver's sequence check discards it as a dup.
            self.sched.schedule(
                at,
                ClusterEvent::WireDeliver {
                    pkt,
                    corrupted: false,
                },
            );
        }
    }
}

/// The node-state side of a firing event: the slice of nodes the engine owns
/// (all of them serially; one partition's worth in a parallel LP), plus the
/// trace/note channels and reusable scratch buffers. `base` maps global
/// [`NodeId`]s onto the slice.
pub(crate) struct NodeCtx<'a> {
    pub nodes: &'a mut [Node],
    pub base: usize,
    pub tracer: &'a Tracer,
    pub notes: &'a mut Vec<NoteRecord>,
    pub mcp_scratch: &'a mut Vec<McpOutput>,
    pub action_scratch: &'a mut Vec<HostAction>,
}

impl NodeCtx<'_> {
    #[inline]
    fn node(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 - self.base]
    }

    fn take_outs(&mut self) -> Vec<McpOutput> {
        std::mem::take(&mut *self.mcp_scratch)
    }

    fn put_outs(&mut self, outs: Vec<McpOutput>) {
        debug_assert!(outs.is_empty(), "scratch returned undrained");
        *self.mcp_scratch = outs;
    }
}

/// Shorthand for a cluster simulation.
pub type ClusterSim = Simulation<Cluster, ClusterEvent>;
/// Shorthand for the cluster scheduler.
pub(crate) type ClusterSched = Scheduler<Cluster, ClusterEvent>;

/// A typed scheduler event on the cluster — the allocation-free encoding of
/// everything the steady-state hot path schedules. Each variant corresponds
/// 1:1 to one of the closures the glue used to box; the [`ClusterEvent::Call`]
/// variant keeps `schedule_fn` working for cold paths (program installation,
/// tests).
pub enum ClusterEvent {
    /// The SEND machine's wire-injection instant arrived for this packet.
    Transmit(Packet),
    /// A worm fully arrived at its destination NIC.
    WireDeliver {
        /// The packet.
        pkt: Packet,
        /// CRC failure injected by the fabric.
        corrupted: bool,
    },
    /// An RDMA into a host buffer completed: enqueue for the poll loop.
    HostDeliver {
        /// Destination node.
        node: NodeId,
        /// Destination port.
        port: PortId,
        /// The delivered event.
        ev: GmEvent,
    },
    /// The host finished processing one `HRecv`.
    HostProcess {
        /// The node whose host poll loop advances.
        node: NodeId,
    },
    /// A firmware timer expired.
    McpTimer {
        /// The node whose firmware set the timer.
        node: NodeId,
        /// What to do on expiry.
        kind: TimerKind,
    },
    /// The host finished initiating a send: the SDMA machine can detect the
    /// queued send token.
    SendTokenReady {
        /// The sending node.
        node: NodeId,
        /// The queued token.
        token: SendToken,
    },
    /// The host finished queueing receive buffers: hand them to the port.
    ProvideRecv {
        /// The node providing buffers.
        node: NodeId,
        /// The port receiving them.
        port: PortId,
        /// How many buffers.
        n: u32,
    },
    /// The host reached the port close in program order.
    ClosePort {
        /// The node closing a port.
        node: NodeId,
        /// The port being closed.
        port: PortId,
    },
    /// A program's scheduled start time arrived: install it on its port
    /// (an endpoint may be owned by successive processes — the §3.2 A/A′
    /// case) and run `on_start`.
    StartProgram {
        /// The node the program runs on.
        node: NodeId,
        /// The port it owns.
        port: PortId,
        /// The program itself.
        program: Box<dyn HostProgram>,
    },
    /// A boxed closure (cold path: tests). Unsupported in parallel runs.
    Call(BoxedFn<Cluster, ClusterEvent>),
}

impl Event<Cluster> for ClusterEvent {
    fn fire(self, cl: &mut Cluster, s: &mut ClusterSched) {
        match self {
            // Closures see the whole world — they cannot run inside a
            // partitioned engine, so they are dispatched here, outside the
            // engine-generic path.
            ClusterEvent::Call(f) => f(cl, s),
            ev => {
                let Cluster {
                    nodes,
                    fabric,
                    tracer,
                    notes,
                    mcp_scratch,
                    action_scratch,
                    ..
                } = cl;
                let mut ctx = NodeCtx {
                    nodes,
                    base: 0,
                    tracer,
                    notes,
                    mcp_scratch,
                    action_scratch,
                };
                let mut sink = SerialSink { fabric, sched: s };
                fire_ev(ev, &mut ctx, &mut sink);
            }
        }
    }

    fn from_boxed(f: BoxedFn<Cluster, ClusterEvent>) -> Self {
        ClusterEvent::Call(f)
    }
}

/// Fire one typed event against the engine-agnostic world slice. This is
/// the single dispatch point both execution engines monomorphize.
///
/// # Panics
/// Panics on [`ClusterEvent::Call`] — closures need the whole [`Cluster`]
/// and are handled by the serial engine before reaching here.
pub(crate) fn fire_ev<S: EventSink>(ev: ClusterEvent, ctx: &mut NodeCtx, sink: &mut S) {
    match ev {
        ClusterEvent::Transmit(pkt) => transmit_now(pkt, ctx, sink),
        ClusterEvent::WireDeliver { pkt, corrupted } => wire_deliver(pkt, corrupted, ctx, sink),
        ClusterEvent::HostDeliver { node, port, ev } => host_deliver(node, port, ev, ctx, sink),
        ClusterEvent::HostProcess { node } => host_process(node, ctx, sink),
        ClusterEvent::McpTimer { node, kind } => {
            let mut outs = ctx.take_outs();
            let now = sink.now();
            ctx.node(node).mcp.handle_timer_into(kind, now, &mut outs);
            pump(node, &mut outs, sink);
            ctx.put_outs(outs);
        }
        ClusterEvent::SendTokenReady { node, token } => {
            let mut outs = ctx.take_outs();
            let now = sink.now();
            ctx.node(node)
                .mcp
                .handle_send_token_into(token, now, &mut outs);
            pump(node, &mut outs, sink);
            ctx.put_outs(outs);
        }
        ClusterEvent::ProvideRecv { node, port, n } => {
            for _ in 0..n {
                ctx.node(node).mcp.core.port_mut(port).provide_recv_token();
            }
        }
        ClusterEvent::ClosePort { node, port } => {
            let mut outs = ctx.take_outs();
            let now = sink.now();
            ctx.node(node).mcp.close_port_into(port, now, &mut outs);
            pump(node, &mut outs, sink);
            ctx.put_outs(outs);
        }
        ClusterEvent::StartProgram {
            node,
            port,
            program,
        } => {
            let port_open = ctx.node(node).mcp.core.port(port).is_open();
            let slot = &mut ctx.node(node).programs[port.idx()];
            assert!(
                slot.is_none() || !port_open,
                "two live programs on {node:?}{port:?}"
            );
            *slot = Some(program);
            start_program(node, port, ctx, sink);
        }
        ClusterEvent::Call(_) => {
            panic!("boxed Call events cannot run inside a partitioned engine")
        }
    }
}

/// Factory producing the firmware extension for each node; receives the
/// node id, the cluster size, and the configuration.
pub type ExtFactory = Box<dyn Fn(NodeId, usize, &GmConfig) -> Box<dyn McpExtension>>;

/// A program start request: which port runs it, the program itself, and
/// the virtual time it begins.
pub type ProgramStart = (GlobalPort, Box<dyn HostProgram>, SimTime);

/// Builds a [`ClusterSim`] with programs scheduled to start.
pub struct ClusterBuilder {
    size: usize,
    config: GmConfig,
    topology: Option<Topology>,
    faults: Option<(FaultPlan, u64)>,
    ext_factory: ExtFactory,
    programs: Vec<ProgramStart>,
    tracer: Option<Tracer>,
}

impl ClusterBuilder {
    /// A builder for `size` nodes with default config, a single-crossbar
    /// topology, and no firmware extension.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1);
        ClusterBuilder {
            size,
            config: GmConfig::default(),
            topology: None,
            faults: None,
            ext_factory: Box::new(|_, _, _| Box::new(NullExtension)),
            programs: Vec::new(),
            tracer: None,
        }
    }

    /// Replace the configuration.
    pub fn config(mut self, config: GmConfig) -> Self {
        self.config = config;
        self
    }

    /// Replace the default single-switch topology.
    ///
    /// # Panics
    /// Panics (at `build`) if the topology has fewer NICs than nodes.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Enable fault injection.
    pub fn faults(mut self, plan: FaultPlan, seed: u64) -> Self {
        self.faults = Some((plan, seed));
        self
    }

    /// Install a firmware extension on every NIC.
    pub fn extension<F>(mut self, f: F) -> Self
    where
        F: Fn(NodeId, usize, &GmConfig) -> Box<dyn McpExtension> + 'static,
    {
        self.ext_factory = Box::new(f);
        self
    }

    /// Run `program` on endpoint `at`, starting (opening its port) at time
    /// `start`.
    pub fn program(
        mut self,
        at: GlobalPort,
        program: Box<dyn HostProgram>,
        start: SimTime,
    ) -> Self {
        assert!(at.node.0 < self.size, "program node out of range");
        assert!(at.port.is_user(), "programs must use user ports");
        self.programs.push((at, program, start));
        self
    }

    /// Keep a bounded structured event trace of up to `capacity` records.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.tracer = Some(Tracer::bounded(capacity));
        self
    }

    /// Record into a caller-owned [`Tracer`] handle instead of an internal
    /// one (lets the caller keep reading after the simulation is dropped).
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Assemble the world plus the list of program-start events, without
    /// committing to an execution engine. The starts are returned in
    /// scheduling order — both engines must seed them in exactly this order
    /// for same-timestamp ties to resolve identically.
    pub fn build_parts(self) -> (Cluster, Vec<ProgramStart>) {
        // Default fabric follows the standard policy: one crossbar up to
        // 16 nodes (every paper-sized cluster is unaffected), a two-level
        // Clos to 1024 hosts, a three-level Clos beyond — a >16-port single
        // crossbar never existed.
        let topology = self
            .topology
            .unwrap_or_else(|| TopologyBuilder::for_cluster(self.size));
        assert!(
            topology.nic_count() >= self.size,
            "topology has {} NICs for {} nodes",
            topology.nic_count(),
            self.size
        );
        let fabric = match self.faults {
            Some((plan, seed)) => Fabric::new(topology).with_faults(plan, seed),
            None => Fabric::new(topology),
        };
        let tracer = self.tracer.unwrap_or_default();
        let nodes = (0..self.size)
            .map(|i| {
                let node = NodeId(i);
                let mut core = McpCore::new(node, self.size, self.config);
                core.set_tracer(tracer.clone());
                let ext = (self.ext_factory)(node, self.size, &self.config);
                Node {
                    host: Host::new(node, &self.config),
                    mcp: Mcp::new(core, ext),
                    programs: (0..8).map(|_| None).collect(),
                }
            })
            .collect();
        let cluster = Cluster {
            nodes,
            fabric,
            tracer,
            notes: Vec::new(),
            config: self.config,
            mcp_scratch: Vec::new(),
            action_scratch: Vec::new(),
        };
        (cluster, self.programs)
    }

    /// Assemble the (serial) simulation and schedule all program starts.
    pub fn build(self) -> ClusterSim {
        let (cluster, starts) = self.build_parts();
        let mut sim: ClusterSim = Simulation::new(cluster);
        for (at, program, start) in starts {
            sim.scheduler_mut().schedule(
                start,
                ClusterEvent::StartProgram {
                    node: at.node,
                    port: at.port,
                    program,
                },
            );
        }
        sim
    }
}

/// Schedule the effects of MCP outputs produced by `node`'s firmware,
/// draining the buffer so it can be reused.
pub fn pump<S: EventSink>(node: NodeId, outs: &mut Vec<McpOutput>, sink: &mut S) {
    for o in outs.drain(..) {
        match o {
            McpOutput::Transmit { at, pkt } => {
                sink.schedule(at, ClusterEvent::Transmit(pkt));
            }
            McpOutput::HostEvent { at, port, ev } => {
                sink.schedule(at, ClusterEvent::HostDeliver { node, port, ev });
            }
            McpOutput::Timer { at, kind } => {
                sink.schedule(at, ClusterEvent::McpTimer { node, kind });
            }
        }
    }
}

/// The SEND machine's wire injection instant arrived: put the worm on the
/// fabric (or loop it back NIC-internally).
fn transmit_now<S: EventSink>(pkt: Packet, ctx: &mut NodeCtx, sink: &mut S) {
    let src = pkt.src.node;
    let dst = pkt.dst.node;
    let now = sink.now();
    ctx.tracer.record(
        now,
        ComponentId {
            node: src.0 as u32,
            unit: Unit::Wire,
        },
        TracePayload::WireInject {
            dst: dst.0 as u32,
            kind: pkt.trace_code(),
        },
    );
    if src == dst {
        // NIC-internal loopback: the packet never touches the wire (and
        // never leaves the partition, so both engines handle it inline).
        let mut outs = ctx.take_outs();
        ctx.node(dst)
            .mcp
            .handle_wire_packet_into(pkt, false, now, &mut outs);
        pump(dst, &mut outs, sink);
        ctx.put_outs(outs);
        return;
    }
    sink.transmit(pkt);
}

/// A worm fully arrived at its destination NIC: run the RECV machine.
fn wire_deliver<S: EventSink>(pkt: Packet, corrupted: bool, ctx: &mut NodeCtx, sink: &mut S) {
    let dst = pkt.dst.node;
    let now = sink.now();
    ctx.tracer.record(
        now,
        ComponentId {
            node: dst.0 as u32,
            unit: Unit::Wire,
        },
        TracePayload::WireDeliver {
            src: pkt.src.node.0 as u32,
            kind: pkt.trace_code(),
            corrupted,
        },
    );
    let mut outs = ctx.take_outs();
    ctx.node(dst)
        .mcp
        .handle_wire_packet_into(pkt, corrupted, now, &mut outs);
    pump(dst, &mut outs, sink);
    ctx.put_outs(outs);
}

/// An RDMA to a host buffer completed: enter the host poll loop.
fn host_deliver<S: EventSink>(
    node: NodeId,
    port: PortId,
    ev: GmEvent,
    ctx: &mut NodeCtx,
    sink: &mut S,
) {
    let now = sink.now();
    if let Some(at) = ctx.node(node).host.enqueue(port, ev, now) {
        sink.schedule(at, ClusterEvent::HostProcess { node });
    }
}

/// One HRecv completed: run the owning program's callback.
fn host_process<S: EventSink>(node: NodeId, ctx: &mut NodeCtx, sink: &mut S) {
    let now = sink.now();
    let (port, ev) = ctx.node(node).host.finish();
    let mut program = ctx.node(node).programs[port.idx()]
        .take()
        .unwrap_or_else(|| panic!("event {ev:?} for {node:?}{port:?} with no program"));
    let buf = std::mem::take(&mut *ctx.action_scratch);
    let mut hctx = HostCtx::with_buffer(now, node, port, buf, ctx.tracer.clone());
    program.on_event(&ev, &mut hctx);
    ctx.node(node).programs[port.idx()] = Some(program);
    let mut actions = hctx.into_actions();
    apply_actions(node, port, &mut actions, ctx, sink);
    *ctx.action_scratch = actions;
    if let Some(at) = ctx.node(node).host.next(now) {
        sink.schedule(at, ClusterEvent::HostProcess { node });
    }
}

/// A program's scheduled start time arrived: open its port and run
/// `on_start`.
fn start_program<S: EventSink>(node: NodeId, port: PortId, ctx: &mut NodeCtx, sink: &mut S) {
    let now = sink.now();
    let mut outs = ctx.take_outs();
    ctx.node(node).mcp.open_port_into(port, now, &mut outs);
    pump(node, &mut outs, sink);
    ctx.put_outs(outs);
    let mut program = ctx.node(node).programs[port.idx()]
        .take()
        .expect("start for unregistered program");
    let buf = std::mem::take(&mut *ctx.action_scratch);
    let mut hctx = HostCtx::with_buffer(now, node, port, buf, ctx.tracer.clone());
    program.on_start(&mut hctx);
    ctx.node(node).programs[port.idx()] = Some(program);
    let mut actions = hctx.into_actions();
    apply_actions(node, port, &mut actions, ctx, sink);
    *ctx.action_scratch = actions;
}

/// Interpret the actions a program emitted during one callback, draining
/// the buffer so it can be reused.
fn apply_actions<S: EventSink>(
    node: NodeId,
    port: PortId,
    actions: &mut Vec<HostAction>,
    ctx: &mut NodeCtx,
    sink: &mut S,
) {
    let now = sink.now();
    for action in actions.drain(..) {
        match action {
            HostAction::Send {
                dst,
                len,
                tag,
                notify,
            } => {
                let ok = ctx.node(node).mcp.core.port_mut(port).take_send_token();
                assert!(ok, "send tokens exhausted on {node:?}{port:?}");
                let at = ctx.node(node).host.reserve_send(now);
                let token = SendToken::Data {
                    src_port: port,
                    dst,
                    len,
                    tag,
                    notify,
                };
                sink.schedule(at, ClusterEvent::SendTokenReady { node, token });
            }
            HostAction::Collective(token) => {
                // Models the paper's two-call sequence (§5.2): the process
                // first calls gm_provide_barrier_buffer(), then
                // gm_barrier_send_with_callback() consumes a send token.
                ctx.node(node)
                    .mcp
                    .core
                    .port_mut(port)
                    .provide_barrier_buffer();
                let ok = ctx.node(node).mcp.core.port_mut(port).take_send_token();
                assert!(ok, "send tokens exhausted on {node:?}{port:?}");
                let at = ctx.node(node).host.reserve_send(now);
                let stok = SendToken::Collective {
                    src_port: port,
                    token,
                };
                sink.schedule(at, ClusterEvent::SendTokenReady { node, token: stok });
            }
            HostAction::ProvideRecv(n) => {
                // Takes effect in program order (after any compute/send the
                // program queued before it in this callback).
                let at = ctx.node(node).host.reserve(SimTime::ZERO, now);
                sink.schedule(at, ClusterEvent::ProvideRecv { node, port, n });
            }
            HostAction::Compute(dur) => {
                ctx.node(node).host.reserve_compute(dur, now);
            }
            HostAction::Note(tag) => {
                ctx.notes.push(NoteRecord {
                    at: now,
                    node,
                    port,
                    tag,
                });
            }
            HostAction::NoteAtBusy(tag) => {
                let at = ctx.node(node).host.busy_until().max(now);
                ctx.notes.push(NoteRecord {
                    at,
                    node,
                    port,
                    tag,
                });
            }
            HostAction::ClosePort => {
                // Takes effect in program order: after the host work the
                // program queued before it (sends, compute) has elapsed.
                let at = ctx.node(node).host.reserve(SimTime::ZERO, now);
                sink.schedule(at, ClusterEvent::ClosePort { node, port });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmsim_des::RunOutcome;

    /// Sends one message to a peer; the peer echoes it back.
    struct PingPong {
        peer: GlobalPort,
        initiator: bool,
        log: Vec<(SimTime, u64)>,
    }

    impl HostProgram for PingPong {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            if self.initiator {
                ctx.send(self.peer, 64, 1);
            }
        }
        fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
            if let GmEvent::Recv { tag, .. } = ev {
                self.log.push((ctx.now, *tag));
                ctx.provide_recv(1);
                if *tag < 3 {
                    ctx.send(self.peer, 64, tag + 1);
                }
            }
        }
    }

    fn pingpong_sim() -> ClusterSim {
        ClusterBuilder::new(2)
            .program(
                GlobalPort::new(0, 1),
                Box::new(PingPong {
                    peer: GlobalPort::new(1, 1),
                    initiator: true,
                    log: vec![],
                }),
                SimTime::ZERO,
            )
            .program(
                GlobalPort::new(1, 1),
                Box::new(PingPong {
                    peer: GlobalPort::new(0, 1),
                    initiator: false,
                    log: vec![],
                }),
                SimTime::ZERO,
            )
            .build()
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = pingpong_sim();
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        let cl = sim.world();
        // tags 1 and 3 land on node 1; tag 2 lands on node 0
        assert_eq!(cl.nodes[1].mcp.core.stats.data_delivered, 2);
        assert_eq!(cl.nodes[0].mcp.core.stats.data_delivered, 1);
        // all reliable packets were acked; nothing in flight
        assert_eq!(cl.nodes[0].mcp.core.conn(NodeId(1)).in_flight(), 0);
        assert_eq!(cl.nodes[1].mcp.core.conn(NodeId(0)).in_flight(), 0);
        // no retransmissions on a clean fabric
        assert_eq!(cl.nodes[0].mcp.core.stats.retx, 0);
    }

    #[test]
    fn one_way_latency_matches_calibration() {
        // One message end to end should cost ≈ Send + SDMA + Network +
        // Recv + RDMA + HRecv ≈ 45.5 us on LANai 4.3 (DESIGN.md §9).
        struct OneShot {
            peer: GlobalPort,
        }
        impl HostProgram for OneShot {
            fn on_start(&mut self, ctx: &mut HostCtx) {
                ctx.send(self.peer, 8, 7);
            }
            fn on_event(&mut self, _: &GmEvent, _: &mut HostCtx) {}
        }
        struct Sink;
        impl HostProgram for Sink {
            fn on_start(&mut self, _: &mut HostCtx) {}
            fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
                if matches!(ev, GmEvent::Recv { .. }) {
                    ctx.note(100);
                }
            }
        }
        let mut sim = ClusterBuilder::new(2)
            .program(
                GlobalPort::new(0, 1),
                Box::new(OneShot {
                    peer: GlobalPort::new(1, 1),
                }),
                SimTime::ZERO,
            )
            .program(GlobalPort::new(1, 1), Box::new(Sink), SimTime::ZERO)
            .build();
        sim.run();
        let t = sim.world().notes_tagged(100).next().unwrap().at;
        let us = t.as_us_f64();
        assert!(
            (40.0..52.0).contains(&us),
            "one-way latency {us:.2}us out of calibration band"
        );
    }

    #[test]
    fn dropped_packets_are_retransmitted() {
        struct OneShot {
            peer: GlobalPort,
        }
        impl HostProgram for OneShot {
            fn on_start(&mut self, ctx: &mut HostCtx) {
                ctx.send(self.peer, 8, 7);
            }
            fn on_event(&mut self, _: &GmEvent, _: &mut HostCtx) {}
        }
        struct Sink(u32);
        impl HostProgram for Sink {
            fn on_start(&mut self, _: &mut HostCtx) {}
            fn on_event(&mut self, ev: &GmEvent, _: &mut HostCtx) {
                if matches!(ev, GmEvent::Recv { .. }) {
                    self.0 += 1;
                }
            }
        }
        // 50% drop rate: delivery must still happen, via timeouts.
        let mut sim = ClusterBuilder::new(2)
            .faults(FaultPlan::drops(0.5), 1234)
            .program(
                GlobalPort::new(0, 1),
                Box::new(OneShot {
                    peer: GlobalPort::new(1, 1),
                }),
                SimTime::ZERO,
            )
            .program(GlobalPort::new(1, 1), Box::new(Sink(0)), SimTime::ZERO)
            .build();
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        assert_eq!(sim.world().nodes[1].mcp.core.stats.data_delivered, 1);
    }

    #[test]
    fn same_seed_same_trace() {
        let fingerprint = || {
            let tracer = Tracer::bounded(4096);
            let mut sim = ClusterBuilder::new(2)
                .tracer(tracer.clone())
                .program(
                    GlobalPort::new(0, 1),
                    Box::new(PingPong {
                        peer: GlobalPort::new(1, 1),
                        initiator: true,
                        log: vec![],
                    }),
                    SimTime::ZERO,
                )
                .program(
                    GlobalPort::new(1, 1),
                    Box::new(PingPong {
                        peer: GlobalPort::new(0, 1),
                        initiator: false,
                        log: vec![],
                    }),
                    SimTime::ZERO,
                )
                .build();
            sim.run();
            assert!(!tracer.is_empty(), "structured trace captured nothing");
            tracer.fingerprint()
        };
        assert_eq!(fingerprint(), fingerprint());
    }

    #[test]
    fn notes_are_timestamped_in_order() {
        struct Noter;
        impl HostProgram for Noter {
            fn on_start(&mut self, ctx: &mut HostCtx) {
                ctx.note(1);
                ctx.compute(SimTime::from_us(10));
                ctx.note(2);
            }
            fn on_event(&mut self, _: &GmEvent, _: &mut HostCtx) {}
        }
        let mut sim = ClusterBuilder::new(1)
            .program(GlobalPort::new(0, 1), Box::new(Noter), SimTime::from_us(5))
            .build();
        sim.run();
        let notes = &sim.world().notes;
        assert_eq!(notes.len(), 2);
        // Notes record when the callback ran, not the compute time.
        assert_eq!(notes[0].at, SimTime::from_us(5));
        assert_eq!(notes[1].at, SimTime::from_us(5));
    }
}
