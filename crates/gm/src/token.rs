//! Send and collective tokens.
//!
//! GM's host/NIC interface is token-based: the host fills in a send token
//! and queues it; the NIC returns it when the send's resources are free.
//! The paper's barrier rides exactly this interface — §4.2: "we do this by
//! putting the state information in the *send token*", and §5.2: the token
//! stores "a list of the port ids and node ids with which barrier messages
//! will be exchanged, as well as an index".

use crate::ids::{GlobalPort, PortId, TeamId};
use crate::ir::CollectiveSchedule;
use std::sync::Arc;

/// The descriptor a host passes in `gm_barrier_send_with_callback()` (and
/// its collective siblings): a compiled [`CollectiveSchedule`] — the IR
/// program the firmware interprets — plus this rank's operand value. The
/// program is compiled on the host (§5.1: tree/schedule construction "can
/// easily be computed at the host") and only the per-rank slice crosses
/// the bus, never the full member list.
///
/// The schedule is reference-counted: a program that posts the same
/// collective every round compiles it once and clones the token per round
/// without copying the step list — cloning a token is allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveToken {
    /// The compiled per-rank program.
    pub schedule: Arc<CollectiveSchedule>,
    /// Operand for value-carrying collectives (reduce contribution,
    /// broadcast payload, scan contribution); barriers ignore it.
    pub value: u64,
    /// The communicator this collective runs on. Defaults to
    /// [`TeamId::GLOBAL`]; the NIC keys its per-port barrier state by this
    /// id so concurrent teams on one port progress independently.
    pub team: TeamId,
}

impl CollectiveToken {
    /// A token carrying `schedule` with a zero operand on the global team.
    pub fn new(schedule: CollectiveSchedule) -> Self {
        CollectiveToken {
            schedule: Arc::new(schedule),
            value: 0,
            team: TeamId::GLOBAL,
        }
    }

    /// A token sharing an already-compiled schedule.
    pub fn shared(schedule: Arc<CollectiveSchedule>) -> Self {
        CollectiveToken {
            schedule,
            value: 0,
            team: TeamId::GLOBAL,
        }
    }

    /// Attach an operand value (builder style).
    pub fn with_value(mut self, value: u64) -> Self {
        self.value = value;
        self
    }

    /// Run this collective on `team` instead of the global communicator
    /// (builder style).
    pub fn with_team(mut self, team: TeamId) -> Self {
        self.team = team;
        self
    }

    /// Host→NIC descriptor size: fixed header plus one endpoint record per
    /// referenced peer, plus a buffer record (address + length) when the
    /// collective carries data. Determines the PIO/DMA cost of posting the
    /// token.
    pub fn descriptor_bytes(&self) -> usize {
        let buffer_record = if self.schedule.payload.is_empty() {
            0
        } else {
            16
        };
        16 + 4 * self.schedule.peer_refs() + buffer_record
    }
}

/// What a queued host send event describes: ordinary data or a collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendToken {
    /// An ordinary reliable message.
    Data {
        /// Source port the token was queued on.
        src_port: PortId,
        /// Destination endpoint.
        dst: GlobalPort,
        /// Payload length in bytes.
        len: usize,
        /// Application tag delivered with the message.
        tag: u64,
        /// Whether the process asked for a `Sent` completion event.
        notify: bool,
    },
    /// A collective initiation (the paper's barrier send token).
    Collective {
        /// Source port the token was queued on.
        src_port: PortId,
        /// The collective descriptor.
        token: CollectiveToken,
    },
}

impl SendToken {
    /// The port this token was queued on.
    pub fn src_port(&self) -> PortId {
        match self {
            SendToken::Data { src_port, .. } | SendToken::Collective { src_port, .. } => *src_port,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Charge, CompletionKind, ScheduleStep, TokenCharge};

    fn gp(n: usize, p: u8) -> GlobalPort {
        GlobalPort::new(n, p)
    }

    fn exchange_program(peers: &[GlobalPort]) -> CollectiveSchedule {
        let mut steps = Vec::new();
        for p in peers {
            steps.push(ScheduleStep::SendTo {
                peers: vec![*p],
                kind: 1,
                charge: Charge::ExchangeSend,
            });
            steps.push(ScheduleStep::RecvFrom {
                peers: vec![*p],
                kind: 1,
                combine: None,
                charge: Charge::ExchangeMatch,
            });
        }
        steps.push(ScheduleStep::DeliverCompletion(CompletionKind::Barrier));
        CollectiveSchedule::new(steps, TokenCharge::Light)
    }

    #[test]
    fn descriptor_bytes_scale_with_peer_refs() {
        let t = CollectiveToken::new(exchange_program(&[gp(1, 1), gp(2, 1)]));
        // Two exchanges = 4 endpoint records (send + recv each).
        assert_eq!(t.descriptor_bytes(), 16 + 16);
        let empty = CollectiveToken::new(exchange_program(&[]));
        assert_eq!(empty.descriptor_bytes(), 16);
    }

    #[test]
    fn descriptor_bytes_add_buffer_record_for_payloads() {
        use crate::ir::Payload;
        let plain = CollectiveToken::new(exchange_program(&[gp(1, 1)]));
        let carrying = CollectiveToken::new(
            exchange_program(&[gp(1, 1)]).with_payload(Payload::for_size(1 << 20)),
        );
        assert_eq!(carrying.descriptor_bytes(), plain.descriptor_bytes() + 16);
    }

    #[test]
    fn value_builder() {
        let t = CollectiveToken::new(exchange_program(&[])).with_value(42);
        assert_eq!(t.value, 42);
        assert_eq!(CollectiveToken::new(exchange_program(&[])).value, 0);
    }

    #[test]
    fn team_builder_defaults_to_global() {
        let t = CollectiveToken::new(exchange_program(&[]));
        assert_eq!(t.team, TeamId::GLOBAL);
        let t = t.with_team(TeamId(9));
        assert_eq!(t.team, TeamId(9));
    }

    #[test]
    fn send_token_port() {
        let d = SendToken::Data {
            src_port: PortId(2),
            dst: gp(1, 2),
            len: 10,
            tag: 0,
            notify: false,
        };
        assert_eq!(d.src_port(), PortId(2));
        let c = SendToken::Collective {
            src_port: PortId(3),
            token: CollectiveToken::new(exchange_program(&[gp(1, 1)])),
        };
        assert_eq!(c.src_port(), PortId(3));
    }
}
