//! Send and collective tokens.
//!
//! GM's host/NIC interface is token-based: the host fills in a send token
//! and queues it; the NIC returns it when the send's resources are free.
//! The paper's barrier rides exactly this interface — §4.2: "we do this by
//! putting the state information in the *send token*", and §5.2: the token
//! stores "a list of the port ids and node ids with which barrier messages
//! will be exchanged, as well as an index".

use crate::ids::{GlobalPort, PortId};

/// How one step of a collective schedule interacts with its peer. Encodes
/// both PE exchanges and the fold-in/fold-out steps that generalize PE to
/// non-power-of-two groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Send to the peer, then wait to receive from it (a PE exchange).
    SendRecv,
    /// Send to the peer and advance immediately.
    SendOnly,
    /// Wait to receive from the peer without sending.
    RecvOnly,
}

/// One step of a collective schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveStep {
    /// The remote endpoint to interact with.
    pub peer: GlobalPort,
    /// How to interact.
    pub kind: StepKind,
}

/// The descriptor a host passes in `gm_barrier_send_with_callback()` (and
/// its collective siblings). For PE the `steps` list is the exchange
/// schedule; for GB the host passes only the node's `parent` and `children`
/// — §5.1: tree construction is "relatively computationally intensive" and
/// stays on the host, so only the local neighbourhood crosses the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveToken {
    /// Extension-defined opcode (which collective, which algorithm).
    pub op: u8,
    /// PE-style step schedule (empty for tree collectives).
    pub steps: Vec<CollectiveStep>,
    /// GB parent endpoint (`None` at the root and for PE).
    pub parent: Option<GlobalPort>,
    /// GB children endpoints (empty for PE).
    pub children: Vec<GlobalPort>,
    /// Operand for value-carrying collectives (reduce contribution,
    /// broadcast payload); barriers ignore it.
    pub value: u64,
}

impl CollectiveToken {
    /// A PE-schedule token.
    pub fn pairwise(op: u8, steps: Vec<CollectiveStep>) -> Self {
        CollectiveToken {
            op,
            steps,
            parent: None,
            children: Vec::new(),
            value: 0,
        }
    }

    /// A tree token from the local neighbourhood.
    pub fn tree(op: u8, parent: Option<GlobalPort>, children: Vec<GlobalPort>) -> Self {
        CollectiveToken {
            op,
            steps: Vec::new(),
            parent,
            children,
            value: 0,
        }
    }

    /// Attach an operand value (builder style).
    pub fn with_value(mut self, value: u64) -> Self {
        self.value = value;
        self
    }

    /// True at a GB tree root.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// Host→NIC descriptor size: fixed header plus one endpoint record per
    /// referenced peer. Determines the PIO/DMA cost of posting the token.
    pub fn descriptor_bytes(&self) -> usize {
        let peers = self.steps.len() + self.children.len() + usize::from(self.parent.is_some());
        16 + 4 * peers
    }
}

/// What a queued host send event describes: ordinary data or a collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendToken {
    /// An ordinary reliable message.
    Data {
        /// Source port the token was queued on.
        src_port: PortId,
        /// Destination endpoint.
        dst: GlobalPort,
        /// Payload length in bytes.
        len: usize,
        /// Application tag delivered with the message.
        tag: u64,
        /// Whether the process asked for a `Sent` completion event.
        notify: bool,
    },
    /// A collective initiation (the paper's barrier send token).
    Collective {
        /// Source port the token was queued on.
        src_port: PortId,
        /// The collective descriptor.
        token: CollectiveToken,
    },
}

impl SendToken {
    /// The port this token was queued on.
    pub fn src_port(&self) -> PortId {
        match self {
            SendToken::Data { src_port, .. } | SendToken::Collective { src_port, .. } => *src_port,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(n: usize, p: u8) -> GlobalPort {
        GlobalPort::new(n, p)
    }

    #[test]
    fn pairwise_token_shape() {
        let steps = vec![
            CollectiveStep {
                peer: gp(1, 1),
                kind: StepKind::SendRecv,
            },
            CollectiveStep {
                peer: gp(2, 1),
                kind: StepKind::SendRecv,
            },
        ];
        let t = CollectiveToken::pairwise(1, steps.clone());
        assert_eq!(t.steps, steps);
        assert!(t.is_root());
        assert_eq!(t.descriptor_bytes(), 16 + 8);
    }

    #[test]
    fn tree_token_shape() {
        let t = CollectiveToken::tree(2, Some(gp(0, 1)), vec![gp(3, 1), gp(4, 1)]);
        assert!(!t.is_root());
        assert_eq!(t.children.len(), 2);
        assert_eq!(t.descriptor_bytes(), 16 + 12);
        let root = CollectiveToken::tree(2, None, vec![gp(1, 1)]);
        assert!(root.is_root());
    }

    #[test]
    fn value_builder() {
        let t = CollectiveToken::tree(3, None, vec![]).with_value(42);
        assert_eq!(t.value, 42);
    }

    #[test]
    fn send_token_port() {
        let d = SendToken::Data {
            src_port: PortId(2),
            dst: gp(1, 2),
            len: 10,
            tag: 0,
            notify: false,
        };
        assert_eq!(d.src_port(), PortId(2));
        let c = SendToken::Collective {
            src_port: PortId(3),
            token: CollectiveToken::pairwise(1, vec![]),
        };
        assert_eq!(c.src_port(), PortId(3));
    }
}
