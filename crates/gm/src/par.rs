//! The conservative parallel execution engine.
//!
//! A [`ParSim`] runs the same world a [`ClusterSim`] does, partitioned into
//! logical processes (one per leaf switch; one per node when the switch
//! partition is not a contiguous node range) that execute windows of width
//! Δ in lockstep. Δ is the *global* minimum unstalled zero-payload delivery
//! latency of the fabric: every non-loopback transmit initiated at `t`
//! arrives at `t + Δ` or later (stalls, payload serialization and every
//! fault outcome only delay arrivals), so within a window `[start,
//! start + Δ)` no LP can affect another and the LPs are data-parallel.
//!
//! Everything that crosses LPs — the fabric walk itself, which mutates
//! shared link state and draws from the fault RNG — is deferred: during the
//! window each `Transmit` only *records* its packet, and at the barrier the
//! coordinator replays all recorded sends against the fabric in the global
//! serial order recovered by the [`Sequencer`]. Trace records and
//! measurement notes are captured per-LP and stitched in the same order.
//! The result is bit-identical to the serial engine: same measurements,
//! same counters, same trace fingerprint. See DESIGN.md §15.
//!
//! Degenerate configurations — one partition, one thread, or a topology
//! with no positive lookahead (a zero-latency link) — fall back to the
//! serial engine inside the same [`ParSim`] wrapper, which is trivially
//! bit-identical.

use crate::cluster::{
    fire_ev, Cluster, ClusterBuilder, ClusterEvent, ClusterSim, EventSink, Node, NodeCtx,
    NoteRecord,
};
use crate::host::HostAction;
use crate::mcp::McpOutput;
use crate::packet::Packet;
use gmsim_des::pdes::{Cause, EvKey, FiredRec, LpQueue, Sequencer, SpinBarrier};
use gmsim_des::trace::TraceRecord;
use gmsim_des::{RunOutcome, SimTime, Simulation, Tracer};
use gmsim_myrinet::fault::Fate;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-event side channel recorded alongside the firing log: how many trace
/// records and notes the event emitted (for barrier stitching) and the
/// packet it put on the wire, if any (a `Transmit` event injects at most
/// one worm).
struct Extra {
    n_trace: u32,
    n_notes: u32,
    transmit: Option<Packet>,
}

/// One logical process: a contiguous slice of the cluster's nodes plus its
/// own event queue and capture channels.
struct Lp {
    /// Global [`NodeId`](crate::ids::NodeId) of `nodes[0]`.
    base: usize,
    nodes: Vec<Node>,
    queue: LpQueue<ClusterEvent>,
    /// Capture tracer shared with this LP's NIC cores (disabled when the
    /// final tracer is disabled, so untraced runs pay nothing).
    tracer: Tracer,
    notes: Vec<NoteRecord>,
    log: Vec<FiredRec>,
    extras: Vec<Extra>,
    mcp_scratch: Vec<McpOutput>,
    action_scratch: Vec<HostAction>,
}

/// The LP-local event sink: follow-ups go into the LP's own queue under
/// `Local` keys; wire injections are deferred to the barrier.
struct LpSink<'a> {
    now: SimTime,
    /// Log position the firing event will occupy (its `Local` cause id).
    pos: u32,
    emission: u32,
    queue: &'a mut LpQueue<ClusterEvent>,
    transmit: &'a mut Option<Packet>,
}

impl EventSink for LpSink<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule(&mut self, at: SimTime, ev: ClusterEvent) {
        assert!(at >= self.now, "event scheduled in the past");
        let key = EvKey {
            at,
            cause: Cause::Local {
                pos: self.pos,
                emission: self.emission,
            },
        };
        self.emission += 1;
        self.queue.push(key, ev);
    }

    fn transmit(&mut self, pkt: Packet) {
        debug_assert!(
            self.transmit.is_none(),
            "one wire injection per Transmit event"
        );
        *self.transmit = Some(pkt);
    }
}

impl Lp {
    /// Fire every pending event strictly before `end`, or until `cap`
    /// events have been logged this window (the global budget backstop,
    /// which keeps a runaway same-time cascade from spinning forever).
    fn run_window(&mut self, end: SimTime, cap: u64) {
        let trace_on = self.tracer.is_enabled();
        while (self.log.len() as u64) < cap {
            let Some((key, ev)) = self.queue.pop_before(end) else {
                break;
            };
            let t0 = if trace_on { self.tracer.len() } else { 0 };
            let n0 = self.notes.len();
            let pos = self.log.len() as u32;
            let mut transmit = None;
            {
                let mut ctx = NodeCtx {
                    nodes: &mut self.nodes,
                    base: self.base,
                    tracer: &self.tracer,
                    notes: &mut self.notes,
                    mcp_scratch: &mut self.mcp_scratch,
                    action_scratch: &mut self.action_scratch,
                };
                let mut sink = LpSink {
                    now: key.at,
                    pos,
                    emission: 0,
                    queue: &mut self.queue,
                    transmit: &mut transmit,
                };
                fire_ev(ev, &mut ctx, &mut sink);
            }
            let t1 = if trace_on { self.tracer.len() } else { 0 };
            self.log.push(FiredRec {
                at: key.at,
                cause: key.cause,
            });
            self.extras.push(Extra {
                n_trace: (t1 - t0) as u32,
                n_notes: (self.notes.len() - n0) as u32,
                transmit,
            });
        }
    }
}

/// Coordinator/worker handshake state for one `run()`.
struct Shared<'a> {
    barrier: SpinBarrier,
    /// Current window end in raw nanoseconds; `u64::MAX` means "stop".
    end_ns: AtomicU64,
    /// Per-LP event cap for the current window (global budget remainder).
    cap: AtomicU64,
    /// Panics caught on worker threads, to be resumed on the coordinator.
    panics: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
    lps: &'a [Mutex<Lp>],
}

/// Fire worker `w`'s share of the LPs (static `lp % n_workers` assignment)
/// for the current window, catching panics so a failing assertion inside an
/// event handler surfaces as a panic on the caller of [`ParSim::run`]
/// instead of deadlocking the barrier.
fn run_share(w: usize, n_workers: usize, end: SimTime, cap: u64, shared: &Shared) {
    let mut i = w;
    while i < shared.lps.len() {
        let mut lp = shared.lps[i].lock().unwrap();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| lp.run_window(end, cap))) {
            drop(lp);
            shared.panics.lock().unwrap().push(payload);
            return;
        }
        i += n_workers;
    }
}

fn worker_loop(w: usize, n_workers: usize, shared: &Shared) {
    let mut sense = false;
    loop {
        // Phase A: the coordinator published the next window (or stop).
        shared.barrier.wait(&mut sense);
        let end_ns = shared.end_ns.load(Ordering::Acquire);
        if end_ns == u64::MAX {
            return;
        }
        let cap = shared.cap.load(Ordering::Acquire);
        run_share(w, n_workers, SimTime::from_ns(end_ns), cap, shared);
        // Phase B: this window is fully fired; the coordinator commits.
        shared.barrier.wait(&mut sense);
    }
}

/// Reusable per-window buffers for the barrier commit, swapped with each
/// LP's capture vectors so the steady state allocates nothing.
#[derive(Default)]
struct CommitScratch {
    logs: Vec<Vec<FiredRec>>,
    extras: Vec<Vec<Extra>>,
    notes: Vec<Vec<NoteRecord>>,
    traces: Vec<Vec<TraceRecord>>,
    trace_cursor: Vec<usize>,
    note_cursor: Vec<usize>,
    pos_rank: Vec<Vec<u64>>,
    order: Vec<(u32, u32)>,
}

impl CommitScratch {
    fn for_lps(n: usize) -> Self {
        CommitScratch {
            logs: (0..n).map(|_| Vec::new()).collect(),
            extras: (0..n).map(|_| Vec::new()).collect(),
            notes: (0..n).map(|_| Vec::new()).collect(),
            traces: (0..n).map(|_| Vec::new()).collect(),
            trace_cursor: vec![0; n],
            note_cursor: vec![0; n],
            pos_rank: Vec::new(),
            order: Vec::new(),
        }
    }
}

/// The barrier commit: merge the window's firing logs into global rank
/// order, re-key the events the window scheduled, then replay every
/// deferred wire injection against the shared fabric — and stitch trace
/// records and notes into the final channels — in exactly the order the
/// serial engine would have produced them. Returns the number of events
/// fired this window.
#[allow(clippy::too_many_arguments)]
fn commit_window(
    shell: &mut Cluster,
    lps: &[Mutex<Lp>],
    lp_of_node: &[u32],
    sequencer: &mut Sequencer,
    scratch: &mut CommitScratch,
    trace_on: bool,
    window_end: SimTime,
) -> u64 {
    let mut fired = 0u64;
    for (i, lpm) in lps.iter().enumerate() {
        let mut lp = lpm.lock().unwrap();
        std::mem::swap(&mut lp.log, &mut scratch.logs[i]);
        std::mem::swap(&mut lp.extras, &mut scratch.extras[i]);
        std::mem::swap(&mut lp.notes, &mut scratch.notes[i]);
        if trace_on {
            scratch.traces[i] = lp.tracer.take_records();
        }
        fired += scratch.logs[i].len() as u64;
    }

    {
        let log_refs: Vec<&[FiredRec]> = scratch.logs.iter().map(|v| v.as_slice()).collect();
        sequencer.sequence(&log_refs, &mut scratch.pos_rank, &mut scratch.order);
    }

    for (i, lpm) in lps.iter().enumerate() {
        let mut lp = lpm.lock().unwrap();
        if lp.queue.needs_seal() {
            lp.queue.seal_window(&scratch.pos_rank[i]);
        }
    }

    scratch.trace_cursor.iter_mut().for_each(|c| *c = 0);
    scratch.note_cursor.iter_mut().for_each(|c| *c = 0);
    for &(lp, pos) in &scratch.order {
        let (lp, pos) = (lp as usize, pos as usize);
        let ex = &mut scratch.extras[lp][pos];
        if let Some(pkt) = ex.transmit.take() {
            let at = scratch.logs[lp][pos].at;
            let rank = scratch.pos_rank[lp][pos];
            let (src, dst) = (pkt.src.node, pkt.dst.node);
            let delivery = shell
                .fabric
                .send(src.nic(), dst.nic(), pkt.payload_bytes(), at);
            let dlp = lp_of_node[dst.0] as usize;
            match delivery.fate {
                Fate::Dropped => {}
                fate => {
                    debug_assert!(
                        delivery.arrival >= window_end,
                        "delivery inside the window that sent it: lookahead violated"
                    );
                    lps[dlp].lock().unwrap().queue.push(
                        EvKey {
                            at: delivery.arrival,
                            cause: Cause::Ranked { rank, emission: 0 },
                        },
                        ClusterEvent::WireDeliver {
                            pkt,
                            corrupted: fate == Fate::Corrupted,
                        },
                    );
                }
            }
            if let Some(dup_at) = delivery.dup_arrival {
                // Fault-injected duplicate, discarded by the receiver's
                // sequence check. The emission index only breaks ties among
                // children of the *same* cause, so using 1 here is correct
                // even when the primary copy was dropped.
                lps[dlp].lock().unwrap().queue.push(
                    EvKey {
                        at: dup_at,
                        cause: Cause::Ranked { rank, emission: 1 },
                    },
                    ClusterEvent::WireDeliver {
                        pkt,
                        corrupted: false,
                    },
                );
            }
        }
        if trace_on {
            let c = scratch.trace_cursor[lp];
            let n = ex.n_trace as usize;
            for rec in &scratch.traces[lp][c..c + n] {
                shell.tracer.push(*rec);
            }
            scratch.trace_cursor[lp] = c + n;
        }
        if ex.n_notes > 0 {
            let c = scratch.note_cursor[lp];
            let n = ex.n_notes as usize;
            shell.notes.extend_from_slice(&scratch.notes[lp][c..c + n]);
            scratch.note_cursor[lp] = c + n;
        }
    }

    for i in 0..lps.len() {
        scratch.logs[i].clear();
        scratch.extras[i].clear();
        scratch.notes[i].clear();
        scratch.traces[i].clear();
    }
    fired
}

/// The partitioned engine state.
struct ParEngine {
    /// The cluster with its nodes drained into the LPs; holds the shared
    /// fabric, the final tracer, and the stitched notes.
    shell: Cluster,
    lps: Vec<Mutex<Lp>>,
    lp_of_node: Vec<u32>,
    delta: SimTime,
    threads: usize,
    sequencer: Sequencer,
    scratch: CommitScratch,
    fired: u64,
    budget: u64,
    trace_on: bool,
    outcome: Option<RunOutcome>,
}

impl ParEngine {
    fn run(&mut self) -> RunOutcome {
        if let Some(done) = self.outcome {
            return done;
        }
        let n_workers = self.threads.min(self.lps.len()).max(1);
        let shared = Shared {
            barrier: SpinBarrier::new(n_workers),
            end_ns: AtomicU64::new(0),
            cap: AtomicU64::new(0),
            panics: Mutex::new(Vec::new()),
            lps: &self.lps,
        };
        let shell = &mut self.shell;
        let lp_of_node = &self.lp_of_node;
        let sequencer = &mut self.sequencer;
        let scratch = &mut self.scratch;
        let fired = &mut self.fired;
        let (budget, delta, trace_on) = (self.budget, self.delta, self.trace_on);

        let outcome = std::thread::scope(|s| {
            for w in 1..n_workers {
                let shared = &shared;
                s.spawn(move || worker_loop(w, n_workers, shared));
            }
            let mut sense = false;
            let outcome = loop {
                // LBTS: the earliest pending event anywhere. Computed after
                // the previous commit, so barrier-pushed deliveries count.
                let mut start: Option<SimTime> = None;
                for lpm in shared.lps {
                    if let Some(at) = lpm.lock().unwrap().queue.next_at() {
                        start = Some(start.map_or(at, |s| s.min(at)));
                    }
                }
                let Some(start) = start else {
                    break RunOutcome::Quiescent;
                };
                if *fired >= budget {
                    break RunOutcome::BudgetExhausted;
                }
                let end = start + delta;
                shared.cap.store(budget - *fired, Ordering::Release);
                shared.end_ns.store(end.as_ns(), Ordering::Release);
                shared.barrier.wait(&mut sense); // A: window open
                run_share(0, n_workers, end, budget - *fired, &shared);
                shared.barrier.wait(&mut sense); // B: window fired
                if !shared.panics.lock().unwrap().is_empty() {
                    break RunOutcome::Quiescent; // placeholder; resumed below
                }
                match catch_unwind(AssertUnwindSafe(|| {
                    commit_window(
                        shell, shared.lps, lp_of_node, sequencer, scratch, trace_on, end,
                    )
                })) {
                    Ok(n) => *fired += n,
                    Err(payload) => {
                        shared.panics.lock().unwrap().push(payload);
                        break RunOutcome::Quiescent; // placeholder; resumed below
                    }
                }
            };
            // Release the workers.
            shared.end_ns.store(u64::MAX, Ordering::Release);
            shared.barrier.wait(&mut sense);
            outcome
        });

        if let Some(payload) = shared.panics.into_inner().unwrap().into_iter().next() {
            resume_unwind(payload);
        }
        self.outcome = Some(outcome);
        outcome
    }

    fn into_world(self) -> Cluster {
        let mut shell = self.shell;
        debug_assert!(shell.nodes.is_empty());
        for lpm in self.lps {
            let lp = lpm.into_inner().unwrap_or_else(|p| p.into_inner());
            debug_assert_eq!(lp.base, shell.nodes.len());
            shell.nodes.extend(lp.nodes);
        }
        shell
    }
}

enum Engine {
    Serial(Box<ClusterSim>),
    Par(Box<ParEngine>),
}

/// A cluster simulation that may run partitioned across threads. Produced
/// by [`ClusterBuilder::build_parallel`]; bit-identical to the serial
/// [`ClusterSim`] on every outcome the run can observe (measurement notes,
/// counters, trace fingerprint, events fired).
pub struct ParSim {
    engine: Engine,
}

impl ParSim {
    /// Replace the event budget (default
    /// [`Simulation::DEFAULT_BUDGET`]). The parallel engine checks the
    /// budget at window granularity, so the exact stopping point of an
    /// exhausted run differs from the serial engine; successful runs are
    /// unaffected.
    pub fn with_budget(self, budget: u64) -> Self {
        let engine = match self.engine {
            Engine::Serial(sim) => Engine::Serial(Box::new(sim.with_budget(budget))),
            Engine::Par(mut e) => {
                e.budget = budget;
                Engine::Par(e)
            }
        };
        ParSim { engine }
    }

    /// True when the run is actually partitioned (false when a degenerate
    /// configuration fell back to the serial engine).
    pub fn is_parallel(&self) -> bool {
        matches!(self.engine, Engine::Par(_))
    }

    /// Number of logical processes (1 when serial).
    pub fn partitions(&self) -> usize {
        match &self.engine {
            Engine::Serial(_) => 1,
            Engine::Par(e) => e.lps.len(),
        }
    }

    /// Run to quiescence (or budget exhaustion).
    pub fn run(&mut self) -> RunOutcome {
        match &mut self.engine {
            Engine::Serial(sim) => sim.run(),
            Engine::Par(e) => e.run(),
        }
    }

    /// Events fired so far.
    pub fn events_fired(&self) -> u64 {
        match &self.engine {
            Engine::Serial(sim) => sim.events_fired(),
            Engine::Par(e) => e.fired,
        }
    }

    /// Consume the simulation, reassembling and returning the world.
    pub fn into_world(self) -> Cluster {
        match self.engine {
            Engine::Serial(sim) => sim.into_world(),
            Engine::Par(e) => e.into_world(),
        }
    }
}

impl ClusterBuilder {
    /// Assemble the simulation for parallel execution on up to `threads`
    /// worker threads.
    ///
    /// The partition is one LP per leaf switch of the topology (falling
    /// back to one LP per node if a switch's NICs are not a contiguous node
    /// range). Degenerate cases — `threads <= 1`, a single partition, or a
    /// topology with no positive minimum delivery latency (zero lookahead)
    /// — run the serial engine instead, which is trivially bit-identical.
    pub fn build_parallel(self, threads: usize) -> ParSim {
        let (cluster, starts) = self.build_parts();
        let size = cluster.nodes.len();
        let topo = cluster.fabric.topology();
        let delta = topo.min_delivery_latency();
        let pm = topo.partition_map();

        // Group the populated nodes into contiguous LP ranges, renumbered
        // by first appearance; bail to per-node LPs on any interleaving.
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut lp_of_node = vec![0u32; size];
        let mut seen = vec![false; pm.count.max(1)];
        let mut contiguous = true;
        let mut last_raw = u32::MAX;
        for (node, slot) in lp_of_node.iter_mut().enumerate() {
            let raw = pm.lp_of[node];
            if raw == last_raw {
                ranges.last_mut().expect("range open").1 += 1;
            } else {
                if seen[raw as usize] {
                    contiguous = false;
                    break;
                }
                seen[raw as usize] = true;
                ranges.push((node, 1));
                last_raw = raw;
            }
            *slot = (ranges.len() - 1) as u32;
        }
        if !contiguous {
            ranges = (0..size).map(|i| (i, 1)).collect();
            for (i, slot) in lp_of_node.iter_mut().enumerate() {
                *slot = i as u32;
            }
        }

        let degenerate =
            threads <= 1 || ranges.len() <= 1 || !matches!(delta, Some(d) if d > SimTime::ZERO);
        if degenerate {
            let mut sim: ClusterSim = Simulation::new(cluster);
            for (at, program, start) in starts {
                sim.scheduler_mut().schedule(
                    start,
                    ClusterEvent::StartProgram {
                        node: at.node,
                        port: at.port,
                        program,
                    },
                );
            }
            return ParSim {
                engine: Engine::Serial(Box::new(sim)),
            };
        }
        let delta = delta.expect("checked above");

        let mut shell = cluster;
        let trace_on = shell.tracer.is_enabled();
        let mut nodes = std::mem::take(&mut shell.nodes);
        let mut lps: Vec<Mutex<Lp>> = Vec::with_capacity(ranges.len());
        for &(base, _len) in ranges.iter().rev() {
            let mut part = nodes.split_off(base);
            let tracer = if trace_on {
                Tracer::capture()
            } else {
                Tracer::disabled()
            };
            for node in &mut part {
                node.mcp.core.set_tracer(tracer.clone());
            }
            lps.push(Mutex::new(Lp {
                base,
                nodes: part,
                queue: LpQueue::new(),
                tracer,
                notes: Vec::new(),
                log: Vec::new(),
                extras: Vec::new(),
                mcp_scratch: Vec::new(),
                action_scratch: Vec::new(),
            }));
        }
        lps.reverse();

        // Seed program starts under Init keys, in the exact order the
        // serial engine schedules them.
        for (slot, (at, program, start)) in starts.into_iter().enumerate() {
            let lp = lp_of_node[at.node.0] as usize;
            lps[lp].get_mut().unwrap().queue.push(
                EvKey {
                    at: start,
                    cause: Cause::Init { slot: slot as u64 },
                },
                ClusterEvent::StartProgram {
                    node: at.node,
                    port: at.port,
                    program,
                },
            );
        }

        let n_lps = lps.len();
        ParSim {
            engine: Engine::Par(Box::new(ParEngine {
                shell,
                lps,
                lp_of_node,
                delta,
                threads,
                sequencer: Sequencer::new(),
                scratch: CommitScratch::for_lps(n_lps),
                fired: 0,
                budget: ClusterSim::DEFAULT_BUDGET,
                trace_on,
                outcome: None,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::GmEvent;
    use crate::host::{HostCtx, HostProgram};
    use crate::ids::GlobalPort;

    /// Sends `rounds` ping-pong messages with a peer.
    struct PingPong {
        peer: GlobalPort,
        initiator: bool,
    }

    impl HostProgram for PingPong {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            if self.initiator {
                ctx.send(self.peer, 64, 1);
            }
        }
        fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
            if let GmEvent::Recv { tag, .. } = ev {
                ctx.note(*tag);
                ctx.provide_recv(1);
                if *tag < 6 {
                    ctx.send(self.peer, 64, tag + 1);
                }
            }
        }
    }

    fn builder(n: usize) -> ClusterBuilder {
        let mut b = ClusterBuilder::new(n);
        for i in 0..n {
            let peer = GlobalPort::new((i + 1) % n, 1);
            b = b.program(
                GlobalPort::new(i, 1),
                Box::new(PingPong {
                    peer,
                    initiator: i % 2 == 0,
                }),
                SimTime::from_us(i as u64),
            );
        }
        b
    }

    #[test]
    fn single_thread_falls_back_to_serial() {
        let sim = builder(4).build_parallel(1);
        assert!(!sim.is_parallel());
        assert_eq!(sim.partitions(), 1);
    }

    #[test]
    fn single_switch_topology_partitions_per_node() {
        // 4 nodes on one crossbar: the partition map degrades to per-NIC
        // LPs so paper-sized clusters still parallelize.
        let sim = builder(4).build_parallel(4);
        assert!(sim.is_parallel());
        assert_eq!(sim.partitions(), 4);
    }

    #[test]
    fn one_node_cluster_falls_back_to_serial() {
        let sim = builder(1).build_parallel(4);
        assert!(!sim.is_parallel());
        assert_eq!(sim.partitions(), 1);
    }

    #[test]
    fn multi_switch_cluster_partitions() {
        // 40 nodes forces the two-level Clos (16-port leaves): >1 leaf.
        let sim = builder(40).build_parallel(4);
        assert!(sim.is_parallel());
        assert!(sim.partitions() > 1);
    }

    #[test]
    fn parallel_run_matches_serial_notes_and_events() {
        let mut serial = builder(40).build();
        assert_eq!(serial.run(), RunOutcome::Quiescent);
        let serial_events = serial.events_fired();
        let serial_world = serial.into_world();

        for threads in [2, 4, 8] {
            let mut par = builder(40).build_parallel(threads);
            assert!(par.is_parallel());
            assert_eq!(par.run(), RunOutcome::Quiescent, "threads={threads}");
            assert_eq!(par.events_fired(), serial_events, "threads={threads}");
            let world = par.into_world();
            assert_eq!(world.notes, serial_world.notes, "threads={threads}");
            assert_eq!(world.nodes.len(), serial_world.nodes.len());
            for (a, b) in world.nodes.iter().zip(serial_world.nodes.iter()) {
                assert_eq!(
                    a.mcp.core.stats.data_delivered,
                    b.mcp.core.stats.data_delivered
                );
                assert_eq!(a.mcp.core.stats.retx, b.mcp.core.stats.retx);
            }
        }
    }

    #[test]
    fn parallel_trace_fingerprint_matches_serial() {
        let serial_fp = {
            let tracer = Tracer::bounded(2048);
            let mut sim = builder(40).tracer(tracer.clone()).build();
            sim.run();
            assert!(!tracer.is_empty());
            tracer.fingerprint()
        };
        let par_fp = {
            let tracer = Tracer::bounded(2048);
            let mut sim = builder(40).tracer(tracer.clone()).build_parallel(4);
            assert!(sim.is_parallel());
            sim.run();
            assert!(!tracer.is_empty());
            tracer.fingerprint()
        };
        assert_eq!(serial_fp, par_fp);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut sim = builder(40).build_parallel(4).with_budget(10);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
    }
}
