//! Model of Myricom's GM message-passing system (version 1.2.3).
//!
//! GM is the software the paper extends: a driver, a host library and the
//! *Myrinet Control Program* (MCP) firmware running on the LANai NIC. This
//! crate reproduces the pieces the NIC-based barrier interacts with:
//!
//! * **Ports** ([`port`]) — up to eight per NIC; a port is the OS-bypass
//!   communication endpoint a process opens.
//! * **Tokens** ([`token`]) — GM's flow-control currency: a *send token*
//!   describes a send event, a *receive token* describes a host buffer. The
//!   barrier extension stores its entire state inside a send token, exactly
//!   as §4.2 of the paper describes.
//! * **The schedule IR** ([`ir`]) — the compiled per-rank collective
//!   program a collective send token carries: explicit send/receive/
//!   complete steps with symbolic firmware charges, interpreted by the
//!   NIC extension and the host baselines alike.
//! * **Connections** ([`connection`]) — reliable NIC-to-NIC channels with
//!   sequence numbers, cumulative acks, nacks and go-back-N retransmission.
//! * **The MCP** ([`mcp`]) — the four firmware state machines of the paper's
//!   Figure 4 (SDMA, SEND, RECV, RDMA), charged in NIC cycles on the
//!   [`gmsim_lanai`] hardware model.
//! * **The extension hook** ([`ext`]) — the seam through which the
//!   `nic-barrier` crate adds collective packet types and send-token
//!   handling to the firmware, mirroring "an addition to GM".
//! * **The host side** ([`host`]) — host processor occupancy, the polling
//!   process model ([`host::HostProgram`]), and per-operation overheads
//!   (the paper's *Send* and *HRecv* terms).
//! * **The cluster** ([`cluster`]) — N nodes over a
//!   [`gmsim_myrinet::Fabric`], plus the event glue that turns MCP outputs
//!   into scheduled simulation events.

#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod connection;
pub mod events;
pub mod ext;
pub mod host;
pub mod ids;
pub mod ir;
pub mod mcp;
pub mod packet;
pub mod par;
pub mod port;
pub mod token;

pub use cluster::{Cluster, ClusterEvent, ClusterSim, Node};
pub use config::GmConfig;
pub use connection::Connection;
pub use events::GmEvent;
pub use ext::McpExtension;
pub use host::{Host, HostAction, HostCtx, HostProgram};
pub use ids::{GlobalPort, NodeId, PortId, TeamId, GM_FIRST_USER_PORT, GM_NUM_PORTS};
pub use ir::{
    Bytes, Charge, CollectiveSchedule, CompletionKind, Payload, ReduceOp, ScheduleStep, Segments,
    TokenCharge,
};
pub use mcp::{Mcp, McpCore, McpOutput, TimerKind};
pub use packet::{ExtPacket, Packet, PacketKind};
pub use par::ParSim;
pub use token::{CollectiveToken, SendToken};
