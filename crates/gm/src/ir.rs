//! The collective schedule IR: a compiled, per-rank program of explicit
//! steps that both the NIC firmware extension and the host-based baselines
//! interpret.
//!
//! §4.2 of the paper puts the barrier's state "in the *send token*"; §5.1
//! keeps schedule *construction* on the host ("the tree construction is a
//! relatively computationally intensive task which can easily be computed
//! at the host"). The IR is the concrete form of that split: a compiler
//! (`nic_barrier::schedule::compile`) turns an algorithm descriptor into a
//! [`CollectiveSchedule`] — a flat list of [`ScheduleStep`]s — and the
//! executors walk the program step by step without knowing which algorithm
//! produced it. Firmware-side costs are named symbolically by [`Charge`]
//! so the same program carries its own cost annotations; the host-side
//! interpreter ignores them and pays ordinary GM send/receive overheads.

use crate::ids::GlobalPort;

/// A payload size in bytes. Newtyped so byte counts and segment counts
/// cannot be confused anywhere charges are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// The raw byte count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The byte count as a `usize` (for DMA/wire interfaces).
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// A count of pipeline segments. Newtyped counterpart of [`Bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Segments(pub u32);

impl Segments {
    /// A single segment (the eager / zero-payload case).
    pub const ONE: Segments = Segments(1);

    /// The raw segment count.
    pub fn get(self) -> u32 {
        self.0
    }
}

/// The data a collective carries and how the NIC pipelines it.
///
/// `bytes` is the full application message size; `seg_bytes` is the
/// pipelining granularity. A payload whose size is at most one segment
/// moves as a single worm (*eager*); anything larger is cut into
/// `ceil(bytes / seg_bytes)` segments that stream through the SDMA →
/// wire → RDMA pipeline (*pipelined*), overlapping the per-segment DMA
/// and wire times. A zero-byte payload is the plain barrier and is
/// guaranteed to add no charges anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Payload {
    /// Total message size.
    pub bytes: Bytes,
    /// Segment granularity (must be nonzero when `bytes` is nonzero).
    pub seg_bytes: Bytes,
}

impl Payload {
    /// The zero-byte payload: a pure synchronization collective.
    pub const EMPTY: Payload = Payload {
        bytes: Bytes::ZERO,
        seg_bytes: Bytes::ZERO,
    };

    /// Messages at or below this size move as one eager worm when sized
    /// by [`Payload::for_size`]; larger ones pipeline in segments of this
    /// granularity (GM's ~4 KB MTU).
    pub const DEFAULT_SEG_BYTES: u64 = 4096;

    /// An eager payload: the whole message as one segment.
    pub fn eager(bytes: u64) -> Payload {
        Payload {
            bytes: Bytes(bytes),
            seg_bytes: Bytes(bytes.max(1)),
        }
    }

    /// A pipelined payload cut into `seg_bytes`-sized segments.
    ///
    /// # Panics
    /// If `seg_bytes` is zero while `bytes` is nonzero.
    pub fn pipelined(bytes: u64, seg_bytes: u64) -> Payload {
        assert!(
            bytes == 0 || seg_bytes > 0,
            "pipelined payload needs a nonzero segment size"
        );
        Payload {
            bytes: Bytes(bytes),
            seg_bytes: Bytes(seg_bytes),
        }
    }

    /// The default policy: eager at or below [`Payload::DEFAULT_SEG_BYTES`],
    /// pipelined above it.
    pub fn for_size(bytes: u64) -> Payload {
        if bytes <= Self::DEFAULT_SEG_BYTES {
            Payload::eager(bytes)
        } else {
            Payload::pipelined(bytes, Self::DEFAULT_SEG_BYTES)
        }
    }

    /// True when no data rides the collective (the plain barrier).
    pub fn is_empty(self) -> bool {
        self.bytes.0 == 0
    }

    /// True when the payload moves as a single worm.
    pub fn is_eager(self) -> bool {
        self.segments() == Segments::ONE
    }

    /// Number of pipeline segments. Zero-byte payloads count as one
    /// (the single zero-length barrier packet).
    pub fn segments(self) -> Segments {
        if self.bytes.0 == 0 {
            Segments::ONE
        } else {
            Segments(self.bytes.0.div_ceil(self.seg_bytes.0) as u32)
        }
    }

    /// Size of segment `i` (zero-based); the last segment may be short.
    pub fn seg_len(self, i: u32) -> Bytes {
        let segs = self.segments().0;
        debug_assert!(i < segs);
        if self.bytes.0 == 0 {
            Bytes::ZERO
        } else if i + 1 == segs {
            Bytes(self.bytes.0 - u64::from(i) * self.seg_bytes.0)
        } else {
            self.seg_bytes
        }
    }
}

/// Combining operator for value-carrying collectives (u64 operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    /// Combine two operands.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The identity element.
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
        }
    }
}

/// Symbolic firmware cost of executing one step (resolved against the
/// calibrated `BarrierCosts` table by the NIC interpreter; ignored by the
/// host interpreter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Charge {
    /// Preparing and queueing one pairwise-exchange-style packet (§5.2's
    /// SDMA-side work).
    ExchangeSend,
    /// Matching one awaited packet against the record and advancing
    /// (§5.2's RDMA-side five-step update).
    ExchangeMatch,
    /// Consuming one gather message (tree walk + combine).
    Gather,
    /// Re-queueing the token for one broadcast child.
    ChildSend,
    /// No firmware charge — e.g. the GB gather-up send, which piggybacks
    /// on the state update that absorbed the last child.
    Free,
}

/// Symbolic cost of picking up the collective token itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenCharge {
    /// A PE-style token: a flat peer list, cheap to parse.
    Light,
    /// A tree token: the firmware parses the neighbourhood and sets up
    /// tree state (§6 blames this overhead for NIC-GB's two-node loss).
    Tree,
}

/// Which completion event a [`ScheduleStep::DeliverCompletion`] DMAs to
/// the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// `GM_BARRIER_COMPLETED_EVENT`.
    Barrier,
    /// A broadcast value delivery.
    Broadcast,
    /// A reduction result (at the root, or everywhere for allreduce).
    Reduce,
    /// A prefix-scan result.
    Scan,
}

/// One step of a compiled collective program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleStep {
    /// Send the accumulator to each peer in order as a packet of `kind`.
    SendTo {
        /// Destination endpoints, sent back to back.
        peers: Vec<GlobalPort>,
        /// Wire packet kind (`nic_barrier::nic::pkt`).
        kind: u8,
        /// Firmware cost per packet.
        charge: Charge,
    },
    /// Wait until a packet of `kind` has arrived from every peer,
    /// consuming them in any order as they land.
    RecvFrom {
        /// Endpoints that must each deliver one packet.
        peers: Vec<GlobalPort>,
        /// Wire packet kind expected.
        kind: u8,
        /// `Some(op)`: fold each arriving value into the accumulator.
        /// `None`: overwrite the accumulator with the arriving value
        /// (a broadcast hand-down; harmless for barriers, whose values
        /// are all zero).
        combine: Option<ReduceOp>,
        /// Firmware cost per consumed packet.
        charge: Charge,
    },
    /// DMA the completion event to the host. Placed *before* any trailing
    /// [`ScheduleStep::SendTo`] so the §5.2 order — completion first,
    /// forwarding second — is encoded in the program itself.
    DeliverCompletion(CompletionKind),
}

/// A compiled per-rank collective program, carried inside the send token
/// the host posts (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveSchedule {
    /// The steps, executed in order (receives may park the program).
    pub steps: Vec<ScheduleStep>,
    /// Cost class of picking up this token.
    pub token_charge: TokenCharge,
    /// The data this collective carries. [`Payload::EMPTY`] for barriers;
    /// every `SendTo`/`RecvFrom` moves one packet *per segment* per peer
    /// when nonempty.
    pub payload: Payload,
}

impl CollectiveSchedule {
    /// A program with no payload (pure synchronization).
    pub fn new(steps: Vec<ScheduleStep>, token_charge: TokenCharge) -> Self {
        CollectiveSchedule {
            steps,
            token_charge,
            payload: Payload::EMPTY,
        }
    }

    /// Attach a payload (builder style).
    pub fn with_payload(mut self, payload: Payload) -> Self {
        self.payload = payload;
        self
    }

    /// Number of endpoint references in the program (descriptor-size
    /// proxy: each peer is one record in the posted token).
    pub fn peer_refs(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                ScheduleStep::SendTo { peers, .. } | ScheduleStep::RecvFrom { peers, .. } => {
                    peers.len()
                }
                ScheduleStep::DeliverCompletion(_) => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_semantics() {
        assert_eq!(ReduceOp::Sum.combine(3, 4), 7);
        assert_eq!(ReduceOp::Sum.combine(u64::MAX, 1), 0, "wrapping");
        assert_eq!(ReduceOp::Min.combine(3, 4), 3);
        assert_eq!(ReduceOp::Max.combine(3, 4), 4);
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            for x in [0u64, 1, 17, u64::MAX] {
                assert_eq!(op.combine(op.identity(), x), x, "{op:?} identity");
            }
        }
    }

    #[test]
    fn peer_refs_counts_every_endpoint() {
        let gp = |n: usize| GlobalPort::new(n, 1);
        let s = CollectiveSchedule::new(
            vec![
                ScheduleStep::RecvFrom {
                    peers: vec![gp(1), gp(2)],
                    kind: 2,
                    combine: None,
                    charge: Charge::Gather,
                },
                ScheduleStep::DeliverCompletion(CompletionKind::Barrier),
                ScheduleStep::SendTo {
                    peers: vec![gp(1)],
                    kind: 3,
                    charge: Charge::ChildSend,
                },
            ],
            TokenCharge::Tree,
        );
        assert_eq!(s.peer_refs(), 3);
        assert_eq!(s.payload, Payload::EMPTY);
    }

    #[test]
    fn empty_payload_is_one_zero_length_segment() {
        let p = Payload::EMPTY;
        assert!(p.is_empty());
        assert!(p.is_eager());
        assert_eq!(p.segments(), Segments::ONE);
        assert_eq!(p.seg_len(0), Bytes::ZERO);
    }

    #[test]
    fn eager_payload_is_one_segment() {
        let p = Payload::eager(100_000);
        assert!(!p.is_empty());
        assert!(p.is_eager());
        assert_eq!(p.segments(), Segments::ONE);
        assert_eq!(p.seg_len(0), Bytes(100_000));
    }

    #[test]
    fn pipelined_payload_segments_and_short_tail() {
        let p = Payload::pipelined(10_000, 4096);
        assert_eq!(p.segments(), Segments(3));
        assert_eq!(p.seg_len(0), Bytes(4096));
        assert_eq!(p.seg_len(1), Bytes(4096));
        assert_eq!(p.seg_len(2), Bytes(10_000 - 2 * 4096));
        let exact = Payload::pipelined(8192, 4096);
        assert_eq!(exact.segments(), Segments(2));
        assert_eq!(exact.seg_len(1), Bytes(4096));
    }

    #[test]
    fn for_size_crosses_at_default_seg_bytes() {
        assert!(Payload::for_size(0).is_empty());
        assert!(Payload::for_size(Payload::DEFAULT_SEG_BYTES).is_eager());
        let big = Payload::for_size(Payload::DEFAULT_SEG_BYTES + 1);
        assert!(!big.is_eager());
        assert_eq!(big.segments(), Segments(2));
    }

    #[test]
    #[should_panic(expected = "nonzero segment size")]
    fn pipelined_rejects_zero_segment_size() {
        let _ = Payload::pipelined(10, 0);
    }
}
