//! The collective schedule IR: a compiled, per-rank program of explicit
//! steps that both the NIC firmware extension and the host-based baselines
//! interpret.
//!
//! §4.2 of the paper puts the barrier's state "in the *send token*"; §5.1
//! keeps schedule *construction* on the host ("the tree construction is a
//! relatively computationally intensive task which can easily be computed
//! at the host"). The IR is the concrete form of that split: a compiler
//! (`nic_barrier::schedule::compile`) turns an algorithm descriptor into a
//! [`CollectiveSchedule`] — a flat list of [`ScheduleStep`]s — and the
//! executors walk the program step by step without knowing which algorithm
//! produced it. Firmware-side costs are named symbolically by [`Charge`]
//! so the same program carries its own cost annotations; the host-side
//! interpreter ignores them and pays ordinary GM send/receive overheads.

use crate::ids::GlobalPort;

/// Combining operator for value-carrying collectives (u64 operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    /// Combine two operands.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The identity element.
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
        }
    }
}

/// Symbolic firmware cost of executing one step (resolved against the
/// calibrated `BarrierCosts` table by the NIC interpreter; ignored by the
/// host interpreter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Charge {
    /// Preparing and queueing one pairwise-exchange-style packet (§5.2's
    /// SDMA-side work).
    ExchangeSend,
    /// Matching one awaited packet against the record and advancing
    /// (§5.2's RDMA-side five-step update).
    ExchangeMatch,
    /// Consuming one gather message (tree walk + combine).
    Gather,
    /// Re-queueing the token for one broadcast child.
    ChildSend,
    /// No firmware charge — e.g. the GB gather-up send, which piggybacks
    /// on the state update that absorbed the last child.
    Free,
}

/// Symbolic cost of picking up the collective token itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenCharge {
    /// A PE-style token: a flat peer list, cheap to parse.
    Light,
    /// A tree token: the firmware parses the neighbourhood and sets up
    /// tree state (§6 blames this overhead for NIC-GB's two-node loss).
    Tree,
}

/// Which completion event a [`ScheduleStep::DeliverCompletion`] DMAs to
/// the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// `GM_BARRIER_COMPLETED_EVENT`.
    Barrier,
    /// A broadcast value delivery.
    Broadcast,
    /// A reduction result (at the root, or everywhere for allreduce).
    Reduce,
    /// A prefix-scan result.
    Scan,
}

/// One step of a compiled collective program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleStep {
    /// Send the accumulator to each peer in order as a packet of `kind`.
    SendTo {
        /// Destination endpoints, sent back to back.
        peers: Vec<GlobalPort>,
        /// Wire packet kind (`nic_barrier::nic::pkt`).
        kind: u8,
        /// Firmware cost per packet.
        charge: Charge,
    },
    /// Wait until a packet of `kind` has arrived from every peer,
    /// consuming them in any order as they land.
    RecvFrom {
        /// Endpoints that must each deliver one packet.
        peers: Vec<GlobalPort>,
        /// Wire packet kind expected.
        kind: u8,
        /// `Some(op)`: fold each arriving value into the accumulator.
        /// `None`: overwrite the accumulator with the arriving value
        /// (a broadcast hand-down; harmless for barriers, whose values
        /// are all zero).
        combine: Option<ReduceOp>,
        /// Firmware cost per consumed packet.
        charge: Charge,
    },
    /// DMA the completion event to the host. Placed *before* any trailing
    /// [`ScheduleStep::SendTo`] so the §5.2 order — completion first,
    /// forwarding second — is encoded in the program itself.
    DeliverCompletion(CompletionKind),
}

/// A compiled per-rank collective program, carried inside the send token
/// the host posts (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveSchedule {
    /// The steps, executed in order (receives may park the program).
    pub steps: Vec<ScheduleStep>,
    /// Cost class of picking up this token.
    pub token_charge: TokenCharge,
}

impl CollectiveSchedule {
    /// Number of endpoint references in the program (descriptor-size
    /// proxy: each peer is one record in the posted token).
    pub fn peer_refs(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                ScheduleStep::SendTo { peers, .. } | ScheduleStep::RecvFrom { peers, .. } => {
                    peers.len()
                }
                ScheduleStep::DeliverCompletion(_) => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_semantics() {
        assert_eq!(ReduceOp::Sum.combine(3, 4), 7);
        assert_eq!(ReduceOp::Sum.combine(u64::MAX, 1), 0, "wrapping");
        assert_eq!(ReduceOp::Min.combine(3, 4), 3);
        assert_eq!(ReduceOp::Max.combine(3, 4), 4);
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            for x in [0u64, 1, 17, u64::MAX] {
                assert_eq!(op.combine(op.identity(), x), x, "{op:?} identity");
            }
        }
    }

    #[test]
    fn peer_refs_counts_every_endpoint() {
        let gp = |n: usize| GlobalPort::new(n, 1);
        let s = CollectiveSchedule {
            steps: vec![
                ScheduleStep::RecvFrom {
                    peers: vec![gp(1), gp(2)],
                    kind: 2,
                    combine: None,
                    charge: Charge::Gather,
                },
                ScheduleStep::DeliverCompletion(CompletionKind::Barrier),
                ScheduleStep::SendTo {
                    peers: vec![gp(1)],
                    kind: 3,
                    charge: Charge::ChildSend,
                },
            ],
            token_charge: TokenCharge::Tree,
        };
        assert_eq!(s.peer_refs(), 3);
    }
}
