//! Randomized protocol fuzz of the GM reliability layer.
//!
//! Each case builds a small cluster, wires a fault plan drawn from the full
//! fault model (drops, corruption, duplication, reordering, bursts, scoped
//! links), and drives point-to-point traffic through it. Whatever the fault
//! mix, the run must terminate — either every message is delivered exactly
//! once and in order, or a connection exhausted its retransmit budget and
//! reported `PeerUnreachable`. Never a hang, never a panic, never a
//! duplicated or reordered delivery to the application.

use gmsim_des::check::forall;
use gmsim_des::{RunOutcome, SimTime};
use gmsim_gm::cluster::{Cluster, ClusterBuilder};
use gmsim_gm::{GlobalPort, GmConfig, GmEvent, HostCtx, HostProgram};
use gmsim_lanai::NicModel;
use gmsim_myrinet::FaultPlan;

/// Per-sender note namespace: the peer notes `TAG_BASE * (i + 1) + k` when
/// it accepts sender `i`'s `k`-th message.
const TAG_BASE: u64 = 10_000;

/// Note recorded by a sender when its connection dies.
const TAG_DEAD: u64 = 9_999;

/// One ring endpoint: sends `count` messages to the next node — one at a
/// time, each waiting for the previous `Sent` completion — while noting
/// every message received from the previous node. Stops sending cleanly if
/// the peer dies.
struct RingPeer {
    peer: GlobalPort,
    base: u64,
    next: u64,
    count: u64,
}

impl HostProgram for RingPeer {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        if self.count > 0 {
            ctx.send_notify(self.peer, 64, self.base);
            self.next = 1;
        }
    }
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        match ev {
            GmEvent::Sent { .. } if self.next < self.count => {
                ctx.send_notify(self.peer, 64, self.base + self.next);
                self.next += 1;
            }
            GmEvent::Recv { tag, .. } => {
                ctx.note(*tag);
                ctx.provide_recv(1);
            }
            GmEvent::PeerUnreachable { .. } => ctx.note(TAG_DEAD),
            _ => {}
        }
    }
}

/// Build and run one fuzz scenario: `n` nodes in a ring, node `i` sending
/// `msgs` messages to node `i + 1`, under `plan`. Returns the cluster for
/// post-mortem assertions plus the final scheduler slab capacity.
fn run_ring(n: usize, msgs: u64, plan: FaultPlan, seed: u64) -> (Cluster, usize) {
    let mut b = ClusterBuilder::new(n).config(GmConfig::paper_host(NicModel::LANAI_4_3));
    if !plan.is_none() {
        b = b.faults(plan, seed);
    }
    for i in 0..n {
        b = b.program(
            GlobalPort::new(i, 1),
            Box::new(RingPeer {
                peer: GlobalPort::new((i + 1) % n, 1),
                base: TAG_BASE * (i as u64 + 1),
                next: 0,
                count: msgs,
            }),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    // Generous horizon: worst-case give-up needs ~0.4 s of virtual time
    // (10 doubling RTOs capped at 50 ms); anything still queued at 20 s is
    // a stale-timer leak or a livelock.
    let outcome = sim.run_until(SimTime::from_ms(20_000));
    assert_eq!(outcome, RunOutcome::Quiescent, "protocol hung");
    let slab = sim.scheduler_mut().slab_capacity();
    (sim.into_world(), slab)
}

/// Shared post-mortem: every receiver saw, from each sender, a strict
/// in-order prefix of that sender's tag sequence — the full sequence unless
/// some connection died.
fn check_exactly_once(cl: &Cluster, n: usize, msgs: u64) {
    let any_dead = cl
        .nodes
        .iter()
        .any(|node| node.mcp.core.connections().any(|c| c.is_dead()));
    for i in 0..n {
        let base = TAG_BASE * (i as u64 + 1);
        let got: Vec<u64> = cl
            .notes
            .iter()
            .filter(|r| r.tag >= base && r.tag < base + TAG_BASE)
            .map(|r| r.tag - base)
            .collect();
        // Exactly once, in order: the received ks are 0, 1, 2, ... with no
        // gaps, repeats or inversions.
        for (expect, &k) in got.iter().enumerate() {
            assert_eq!(k, expect as u64, "sender {i}: out-of-order or dup");
        }
        if !any_dead {
            assert_eq!(got.len() as u64, msgs, "sender {i}: lost messages");
        }
    }
    if !any_dead {
        // Everything acked: no window left in flight anywhere.
        for node in &cl.nodes {
            for c in node.mcp.core.connections() {
                assert_eq!(c.in_flight(), 0, "unacked window survived the run");
            }
        }
    }
}

#[test]
fn random_fault_mixes_never_hang_and_deliver_exactly_once() {
    forall(640, 0xF0_2201, |g| {
        let n = g.usize_in(2, 4);
        let msgs = g.u64_in(2, 8);
        let plan = FaultPlan {
            drop_probability: g.f64_in(0.0, 0.4),
            corrupt_probability: if g.chance(0.5) {
                g.f64_in(0.0, 0.3)
            } else {
                0.0
            },
            duplicate_probability: if g.chance(0.5) {
                g.f64_in(0.0, 0.3)
            } else {
                0.0
            },
            reorder_probability: if g.chance(0.5) {
                g.f64_in(0.0, 0.3)
            } else {
                0.0
            },
            reorder_delay: SimTime::from_us(g.u64_in(1, 80)),
            burst_len: g.u32_in(1, 3),
            only_src: if g.chance(0.2) {
                Some(g.u32_in(0, (n - 1) as u32))
            } else {
                None
            },
        };
        let seed = g.any_u64();
        let (cl, slab) = run_ring(n, msgs, plan, seed);
        check_exactly_once(&cl, n, msgs);
        // Stale-timer leak guard: a handful of nodes exchanging a handful
        // of messages must never balloon the scheduler slab, no matter how
        // many retransmission rounds the faults force.
        assert!(slab <= 256, "scheduler slab grew to {slab}");
    });
}

/// Satellite regression: sustained 60 % drops used to grow the scheduler
/// heap by one stale RTO timer per retransmission (O(retx × window)); the
/// per-connection timer keeps occupancy flat.
#[test]
fn sustained_drops_keep_scheduler_occupancy_bounded() {
    let (cl, slab) = run_ring(2, 24, FaultPlan::drops(0.6), 0xBEEF);
    // 24 messages × 2 directions at 60 % drop forces dozens of
    // retransmission rounds; the slab must stay within a small constant of
    // the fault-free footprint (one timer per connection, a few wire and
    // host events).
    assert!(slab <= 64, "stale timers accumulated: slab = {slab}");
    let retx: u64 = cl.nodes.iter().map(|n| n.mcp.core.stats.retx).sum();
    assert!(
        retx > 10,
        "the drop plan must actually bite (retx = {retx})"
    );
}

/// A fully severed link terminates with a typed give-up, not a hang: the
/// firmware reports `PeerUnreachable`, marks the connection dead, and the
/// abandoned send token is returned to the port.
#[test]
fn total_loss_gives_up_cleanly() {
    let (cl, _) = run_ring(2, 4, FaultPlan::drops(1.0), 7);
    let gave_up: u64 = cl.nodes.iter().map(|n| n.mcp.core.stats.gave_up).sum();
    assert!(gave_up >= 1, "no connection gave up under total loss");
    assert!(cl
        .nodes
        .iter()
        .any(|n| n.mcp.core.connections().any(|c| c.is_dead())));
    // The failure surfaced to at least one program as PeerUnreachable.
    assert!(
        cl.notes.iter().any(|r| r.tag == TAG_DEAD),
        "no program saw PeerUnreachable"
    );
    // Nothing was delivered, and nothing hung: zero Recv notes.
    assert_eq!(cl.notes.iter().filter(|r| r.tag >= TAG_BASE).count(), 0);
}

/// Backoff is visible in the metrics: genuine timeouts bump `rto_backoffs`,
/// and lossless runs never charge a retransmission or a backoff.
#[test]
fn backoff_counters_track_loss() {
    let (lossless, _) = run_ring(2, 6, FaultPlan::NONE, 1);
    for n in &lossless.nodes {
        assert_eq!(n.mcp.core.stats.rto_backoffs, 0);
        assert_eq!(n.mcp.core.stats.retx, 0);
    }
    let (lossy, _) = run_ring(2, 6, FaultPlan::drops(0.7), 3);
    let backoffs: u64 = lossy
        .nodes
        .iter()
        .map(|n| n.mcp.core.stats.rto_backoffs)
        .sum();
    assert!(backoffs > 0, "70% drops must trigger RTO backoff");
}
