//! Direct-drive tests of the MCP state machines, including the extension
//! dispatch path, using a counting stub extension.

use gmsim_des::SimTime;
use gmsim_gm::{
    CollectiveToken, ExtPacket, GlobalPort, GmConfig, GmEvent, Mcp, McpCore, McpExtension,
    McpOutput, NodeId, Packet, PacketKind, PortId, SendToken, TimerKind,
};
use std::any::Any;

/// Records every extension upcall.
#[derive(Default)]
struct CountingExt {
    packets: Vec<(GlobalPort, GlobalPort, u8)>,
    tokens: u64,
    opens: u64,
    closes: u64,
}

impl McpExtension for CountingExt {
    fn on_collective_token(
        &mut self,
        _core: &mut McpCore,
        _port: PortId,
        _token: CollectiveToken,
        _now: SimTime,
        _out: &mut Vec<McpOutput>,
    ) {
        self.tokens += 1;
    }
    fn on_ext_packet(
        &mut self,
        _core: &mut McpCore,
        src: GlobalPort,
        dst: GlobalPort,
        body: ExtPacket,
        _now: SimTime,
        _out: &mut Vec<McpOutput>,
    ) {
        self.packets.push((src, dst, body.ext_type));
    }
    fn on_port_open(
        &mut self,
        _core: &mut McpCore,
        _port: PortId,
        _now: SimTime,
        _out: &mut Vec<McpOutput>,
    ) {
        self.opens += 1;
    }
    fn on_port_close(
        &mut self,
        _core: &mut McpCore,
        _port: PortId,
        _now: SimTime,
        _out: &mut Vec<McpOutput>,
    ) {
        self.closes += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn mcp() -> Mcp {
    let mut m = Mcp::new(
        McpCore::new(NodeId(0), 4, GmConfig::default()),
        Box::new(CountingExt::default()),
    );
    m.open_port(PortId(1), SimTime::ZERO);
    m
}

fn ext_of(m: &Mcp) -> &CountingExt {
    m.ext().as_any().downcast_ref::<CountingExt>().unwrap()
}

fn ext_pkt(seq: Option<gmsim_gm::packet::Seq>, ty: u8) -> Packet {
    Packet {
        src: GlobalPort::new(1, 1),
        dst: GlobalPort::new(0, 1),
        kind: PacketKind::Ext {
            seq,
            body: ExtPacket::new(ty, 1, 0),
        },
    }
}

#[test]
fn in_order_ext_packet_reaches_extension_and_is_acked() {
    let mut m = mcp();
    let outs = m.handle_wire_packet(ext_pkt(Some(0), 7), false, SimTime::ZERO);
    assert_eq!(ext_of(&m).packets.len(), 1);
    assert_eq!(ext_of(&m).packets[0].2, 7);
    assert!(outs.iter().any(|o| matches!(
        o,
        McpOutput::Transmit { pkt, .. } if matches!(pkt.kind, PacketKind::Ack { ack: 1 })
    )));
}

#[test]
fn out_of_order_ext_packet_is_nacked_not_dispatched() {
    let mut m = mcp();
    let outs = m.handle_wire_packet(ext_pkt(Some(3), 7), false, SimTime::ZERO);
    assert!(ext_of(&m).packets.is_empty(), "no dispatch before reorder");
    assert!(outs.iter().any(|o| matches!(
        o,
        McpOutput::Transmit { pkt, .. } if matches!(pkt.kind, PacketKind::Nack { expected: 0 })
    )));
}

#[test]
fn duplicate_ext_packet_is_dispatched_once() {
    let mut m = mcp();
    m.handle_wire_packet(ext_pkt(Some(0), 7), false, SimTime::ZERO);
    m.handle_wire_packet(ext_pkt(Some(0), 7), false, SimTime::from_us(5));
    assert_eq!(
        ext_of(&m).packets.len(),
        1,
        "duplicates must not re-dispatch"
    );
    assert_eq!(m.core.stats.dup_drops, 1);
}

#[test]
fn unreliable_ext_packet_bypasses_sequencing() {
    let mut m = mcp();
    // No seq: dispatched directly, out of any order, never acked.
    let outs = m.handle_wire_packet(ext_pkt(None, 9), false, SimTime::ZERO);
    assert_eq!(ext_of(&m).packets.len(), 1);
    assert!(outs.is_empty(), "no ack for unreliable packets");
}

#[test]
fn extension_sees_lifecycle_hooks() {
    let mut m = mcp();
    m.open_port(PortId(2), SimTime::ZERO);
    m.close_port(PortId(2), SimTime::from_us(1));
    let e = ext_of(&m);
    assert_eq!(e.opens, 2, "port 1 at setup + port 2");
    assert_eq!(e.closes, 1);
}

#[test]
fn collective_token_routed_to_extension() {
    let mut m = mcp();
    m.handle_send_token(
        SendToken::Collective {
            src_port: PortId(1),
            token: CollectiveToken::new(gmsim_gm::CollectiveSchedule::new(
                vec![],
                gmsim_gm::TokenCharge::Light,
            )),
        },
        SimTime::ZERO,
    );
    assert_eq!(ext_of(&m).tokens, 1);
}

#[test]
fn corrupted_ack_is_ignored() {
    let mut m = mcp();
    m.core.port_mut(PortId(1)).take_send_token();
    m.handle_send_token(
        SendToken::Data {
            src_port: PortId(1),
            dst: GlobalPort::new(1, 1),
            len: 8,
            tag: 0,
            notify: false,
        },
        SimTime::ZERO,
    );
    assert_eq!(m.core.conn(NodeId(1)).in_flight(), 1);
    let ack = Packet {
        src: GlobalPort::new(1, 0),
        dst: GlobalPort::new(0, 0),
        kind: PacketKind::Ack { ack: 1 },
    };
    m.handle_wire_packet(ack, true, SimTime::from_us(100)); // corrupted
    assert_eq!(
        m.core.conn(NodeId(1)).in_flight(),
        1,
        "corrupted ack ignored"
    );
    assert_eq!(m.core.stats.crc_drops, 1);
}

#[test]
fn rto_timer_retransmits_unacked_packet() {
    let mut m = mcp();
    let outs = m.handle_send_token(
        SendToken::Data {
            src_port: PortId(1),
            dst: GlobalPort::new(1, 1),
            len: 8,
            tag: 0,
            notify: false,
        },
        SimTime::ZERO,
    );
    // Extract the armed timer.
    let (at, kind) = outs
        .iter()
        .find_map(|o| match o {
            McpOutput::Timer { at, kind } => Some((*at, *kind)),
            _ => None,
        })
        .expect("no RTO armed");
    assert!(matches!(kind, TimerKind::Rto { peer: NodeId(1) }));
    // Fire it: the packet must be retransmitted with a fresh timer.
    let outs = m.handle_timer(kind, at);
    let retx = outs
        .iter()
        .filter(|o| matches!(o, McpOutput::Transmit { .. }))
        .count();
    assert_eq!(retx, 1);
    assert_eq!(m.core.stats.retx, 1);
    assert!(outs.iter().any(|o| matches!(o, McpOutput::Timer { .. })));
}

#[test]
fn cumulative_ack_clears_multiple_and_fires_notifies() {
    let mut m = mcp();
    for tag in 0..3u64 {
        m.core.port_mut(PortId(1)).take_send_token();
        m.handle_send_token(
            SendToken::Data {
                src_port: PortId(1),
                dst: GlobalPort::new(1, 1),
                len: 8,
                tag,
                notify: true,
            },
            SimTime::ZERO,
        );
    }
    assert_eq!(m.core.conn(NodeId(1)).in_flight(), 3);
    let ack = Packet {
        src: GlobalPort::new(1, 0),
        dst: GlobalPort::new(0, 0),
        kind: PacketKind::Ack { ack: 3 },
    };
    let outs = m.handle_wire_packet(ack, false, SimTime::from_us(200));
    let sent_events: Vec<u64> = outs
        .iter()
        .filter_map(|o| match o {
            McpOutput::HostEvent {
                ev: GmEvent::Sent { tag },
                ..
            } => Some(*tag),
            _ => None,
        })
        .collect();
    assert_eq!(sent_events, [0, 1, 2]);
    assert_eq!(m.core.conn(NodeId(1)).in_flight(), 0);
}

#[test]
fn data_and_ext_share_one_ordered_stream() {
    // §3.3: barrier and non-barrier messages use the same sequence space,
    // so an ext packet sent after a data packet cannot be consumed first.
    let mut m = mcp();
    // data seq 0 then ext seq 1 — deliver the ext FIRST (reordered).
    let ext1 = ext_pkt(Some(1), 7);
    let outs = m.handle_wire_packet(ext1, false, SimTime::ZERO);
    assert!(ext_of(&m).packets.is_empty());
    assert!(outs.iter().any(|o| matches!(
        o,
        McpOutput::Transmit { pkt, .. } if matches!(pkt.kind, PacketKind::Nack { expected: 0 })
    )));
    // Now the data packet arrives; then the retransmitted ext.
    let data = Packet {
        src: GlobalPort::new(1, 1),
        dst: GlobalPort::new(0, 1),
        kind: PacketKind::Data {
            seq: 0,
            len: 8,
            tag: 5,
            notify: false,
        },
    };
    let outs = m.handle_wire_packet(data, false, SimTime::from_us(10));
    assert!(outs.iter().any(|o| matches!(
        o,
        McpOutput::HostEvent {
            ev: GmEvent::Recv { .. },
            ..
        }
    )));
    m.handle_wire_packet(ext1, false, SimTime::from_us(20));
    assert_eq!(ext_of(&m).packets.len(), 1, "ext delivered after the data");
}
