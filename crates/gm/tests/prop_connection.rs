//! Randomized tests of the go-back-N reliability machinery: for any
//! interleaving of transmissions, drops, acks, nacks and timeouts, the
//! receiver delivers every sequence number exactly once, in order.

use gmsim_des::check::forall;
use gmsim_des::SimTime;
use gmsim_gm::connection::RxVerdict;
use gmsim_gm::{Connection, GlobalPort, NodeId, Packet, PacketKind};

fn data(seq: u32) -> Packet {
    Packet {
        src: GlobalPort::new(0, 1),
        dst: GlobalPort::new(1, 1),
        kind: PacketKind::Data {
            seq,
            len: 8,
            tag: seq as u64,
            notify: false,
        },
    }
}

/// Sender-side: any ack/nack interleaving keeps the sent list a sorted
/// window and never resurrects acknowledged packets.
#[test]
fn sender_window_invariants() {
    forall(256, 0x6A_0001, |g| {
        let ops = g.vec_of(1, 200, |g| (g.u8_in(0, 2), g.u32_in(0, 39)));
        let mut c = Connection::new(NodeId(1));
        let mut highest_acked = 0u32;
        let mut sent_count = 0u32;
        let mut now = SimTime::ZERO;
        for (op, arg) in ops {
            now += SimTime::from_ns(10);
            match op {
                0 => {
                    // transmit the next packet
                    let seq = c.assign_seq();
                    c.record_sent(data(seq), now);
                    sent_count += 1;
                }
                1 => {
                    // cumulative ack; a real receiver can only ack what was
                    // actually sent, so clamp to the sent window
                    let ack = arg.min(sent_count);
                    if ack > highest_acked {
                        highest_acked = ack;
                    }
                    c.on_ack(ack);
                }
                _ => {
                    // nack: retransmit from arg
                    let re = c.on_nack(arg, now);
                    for p in &re {
                        assert!(p.seq().unwrap() >= arg);
                        assert!(
                            p.seq().unwrap() >= highest_acked,
                            "retransmitted an acked packet"
                        );
                    }
                }
            }
            // invariant: the sent window is sorted and above all acks seen
            let mut prev = None;
            if let Some(front) = c.oldest_unacked() {
                assert!(front.packet.seq().unwrap() >= highest_acked);
                prev = front.packet.seq();
            }
            let _ = prev;
        }
    });
}

/// Receiver-side: present a random arrival order (with duplicates) of
/// sequences 0..n; the accept set is exactly 0..n, each exactly once,
/// accepted in increasing order.
#[test]
fn receiver_accepts_each_seq_once_in_order() {
    forall(256, 0x6A_0002, |g| {
        let n = g.u32_in(1, 29);
        let extra = g.vec_of(0, 60, |g| g.u32_in(0, 29));
        let seed = g.any_u64();
        // Build an arrival multiset: every seq at least once plus noise.
        let mut arrivals: Vec<u32> = (0..n).collect();
        arrivals.extend(extra.into_iter().filter(|s| *s < n));
        // Deterministic shuffle.
        let mut rng = gmsim_des::SimRng::new(seed);
        rng.shuffle(&mut arrivals);

        let mut c = Connection::new(NodeId(0));
        let mut accepted = Vec::new();
        // Loop until everything is delivered: out-of-order packets are
        // dropped (the real system nacks and the sender retransmits, which
        // we emulate by replaying the arrival list).
        let mut guard = 0;
        while accepted.len() < n as usize {
            guard += 1;
            assert!(guard < 1000, "no progress");
            for &seq in &arrivals {
                match c.classify_rx(seq) {
                    RxVerdict::Accept => accepted.push(seq),
                    RxVerdict::Duplicate | RxVerdict::OutOfOrder { .. } => {}
                }
            }
        }
        assert_eq!(accepted, (0..n).collect::<Vec<_>>());
        // Everything further is a duplicate.
        for seq in 0..n {
            assert_eq!(c.classify_rx(seq), RxVerdict::Duplicate);
        }
        assert_eq!(c.ack_value(), n);
    });
}

/// peek_rx never mutates: peeking any sequence any number of times
/// leaves the ack value unchanged.
#[test]
fn peek_is_pure() {
    forall(256, 0x6A_0003, |g| {
        let accepts = g.u32_in(0, 19);
        let probes = g.vec_of(0, 40, |g| g.u32_in(0, 39));
        let mut c = Connection::new(NodeId(0));
        for s in 0..accepts {
            assert_eq!(c.classify_rx(s), RxVerdict::Accept);
        }
        let ack = c.ack_value();
        for p in probes {
            let _ = c.peek_rx(p);
            assert_eq!(c.ack_value(), ack);
        }
    });
}

/// Timeout semantics: a timeout for a (seq, sent_at) pair fires iff
/// that exact transmission is still outstanding.
#[test]
fn timeouts_fire_iff_live() {
    forall(64, 0x6A_0004, |g| {
        let ack_to = g.u32_in(0, 9);
        let mut c = Connection::new(NodeId(1));
        let mut sent_ats = Vec::new();
        for i in 0..10u32 {
            let seq = c.assign_seq();
            let at = SimTime::from_ns(100 * (i as u64 + 1));
            c.record_sent(data(seq), at);
            sent_ats.push(at);
        }
        c.on_ack(ack_to);
        for (seq, &at) in (0u32..10).zip(&sent_ats) {
            let re = c.on_timeout(seq, at, SimTime::from_ms(1));
            if seq < ack_to {
                assert!(re.is_empty(), "acked seq {seq} retransmitted");
            } else {
                assert!(!re.is_empty(), "live seq {seq} ignored");
                // go-back-N: the retransmission covers the tail
                assert_eq!(re[0].seq().unwrap(), seq);
                break; // sent_at values were refreshed; later probes stale by design
            }
        }
    });
}
