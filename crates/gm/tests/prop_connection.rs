//! Property-based tests of the go-back-N reliability machinery: for any
//! interleaving of transmissions, drops, acks, nacks and timeouts, the
//! receiver delivers every sequence number exactly once, in order.

use gmsim_des::SimTime;
use gmsim_gm::connection::RxVerdict;
use gmsim_gm::{Connection, GlobalPort, NodeId, Packet, PacketKind};
use proptest::prelude::*;

fn data(seq: u32) -> Packet {
    Packet {
        src: GlobalPort::new(0, 1),
        dst: GlobalPort::new(1, 1),
        kind: PacketKind::Data {
            seq,
            len: 8,
            tag: seq as u64,
            notify: false,
        },
    }
}

proptest! {
    /// Sender-side: any ack/nack interleaving keeps the sent list a sorted
    /// window and never resurrects acknowledged packets.
    #[test]
    fn sender_window_invariants(ops in proptest::collection::vec((0u8..3, 0u32..40), 1..200)) {
        let mut c = Connection::new(NodeId(1));
        let mut highest_acked = 0u32;
        let mut sent_count = 0u32;
        let mut now = SimTime::ZERO;
        for (op, arg) in ops {
            now += SimTime::from_ns(10);
            match op {
                0 => {
                    // transmit the next packet
                    let seq = c.assign_seq();
                    c.record_sent(data(seq), now);
                    sent_count += 1;
                }
                1 => {
                    // cumulative ack; a real receiver can only ack what was
                    // actually sent, so clamp to the sent window
                    let ack = arg.min(sent_count);
                    if ack > highest_acked {
                        highest_acked = ack;
                    }
                    c.on_ack(ack);
                }
                _ => {
                    // nack: retransmit from arg
                    let re = c.on_nack(arg, now);
                    for p in &re {
                        prop_assert!(p.seq().unwrap() >= arg);
                        prop_assert!(
                            p.seq().unwrap() >= highest_acked,
                            "retransmitted an acked packet"
                        );
                    }
                }
            }
            // invariant: the sent window is sorted and above all acks seen
            let mut prev = None;
            if let Some(front) = c.oldest_unacked() {
                prop_assert!(front.packet.seq().unwrap() >= highest_acked);
                prev = front.packet.seq();
            }
            let _ = prev;
        }
    }

    /// Receiver-side: present a random arrival order (with duplicates) of
    /// sequences 0..n; the accept set is exactly 0..n, each exactly once,
    /// accepted in increasing order.
    #[test]
    fn receiver_accepts_each_seq_once_in_order(
        n in 1u32..30,
        extra in proptest::collection::vec(0u32..30, 0..60),
        seed in any::<u64>(),
    ) {
        // Build an arrival multiset: every seq at least once plus noise.
        let mut arrivals: Vec<u32> = (0..n).collect();
        arrivals.extend(extra.into_iter().filter(|s| *s < n));
        // Deterministic shuffle.
        let mut rng = gmsim_des::SimRng::new(seed);
        rng.shuffle(&mut arrivals);

        let mut c = Connection::new(NodeId(0));
        let mut accepted = Vec::new();
        // Loop until everything is delivered: out-of-order packets are
        // dropped (the real system nacks and the sender retransmits, which
        // we emulate by replaying the arrival list).
        let mut guard = 0;
        while accepted.len() < n as usize {
            guard += 1;
            prop_assert!(guard < 1000, "no progress");
            for &seq in &arrivals {
                match c.classify_rx(seq) {
                    RxVerdict::Accept => accepted.push(seq),
                    RxVerdict::Duplicate | RxVerdict::OutOfOrder { .. } => {}
                }
            }
        }
        prop_assert_eq!(accepted.clone(), (0..n).collect::<Vec<_>>());
        // Everything further is a duplicate.
        for seq in 0..n {
            prop_assert_eq!(c.classify_rx(seq), RxVerdict::Duplicate);
        }
        prop_assert_eq!(c.ack_value(), n);
    }

    /// peek_rx never mutates: peeking any sequence any number of times
    /// leaves the ack value unchanged.
    #[test]
    fn peek_is_pure(accepts in 0u32..20, probes in proptest::collection::vec(0u32..40, 0..40)) {
        let mut c = Connection::new(NodeId(0));
        for s in 0..accepts {
            prop_assert_eq!(c.classify_rx(s), RxVerdict::Accept);
        }
        let ack = c.ack_value();
        for p in probes {
            let _ = c.peek_rx(p);
            prop_assert_eq!(c.ack_value(), ack);
        }
    }

    /// Timeout semantics: a timeout for a (seq, sent_at) pair fires iff
    /// that exact transmission is still outstanding.
    #[test]
    fn timeouts_fire_iff_live(ack_to in 0u32..10) {
        let mut c = Connection::new(NodeId(1));
        let mut sent_ats = Vec::new();
        for i in 0..10u32 {
            let seq = c.assign_seq();
            let at = SimTime::from_ns(100 * (i as u64 + 1));
            c.record_sent(data(seq), at);
            sent_ats.push(at);
        }
        c.on_ack(ack_to);
        for (seq, &at) in (0u32..10).zip(&sent_ats) {
            let re = c.on_timeout(seq, at, SimTime::from_ms(1));
            if seq < ack_to {
                prop_assert!(re.is_empty(), "acked seq {seq} retransmitted");
            } else {
                prop_assert!(!re.is_empty(), "live seq {seq} ignored");
                // go-back-N: the retransmission covers the tail
                prop_assert_eq!(re[0].seq().unwrap(), seq);
                break; // sent_at values were refreshed; later probes stale by design
            }
        }
    }
}
