//! Randomized tests of the go-back-N reliability machinery: for any
//! interleaving of transmissions, drops, acks, nacks and timeouts, the
//! receiver delivers every sequence number exactly once, in order.

use gmsim_des::check::forall;
use gmsim_des::SimTime;
use gmsim_gm::connection::RxVerdict;
use gmsim_gm::packet::Seq;
use gmsim_gm::{Connection, GlobalPort, NodeId, Packet, PacketKind};

fn data(seq: Seq) -> Packet {
    Packet {
        src: GlobalPort::new(0, 1),
        dst: GlobalPort::new(1, 1),
        kind: PacketKind::Data {
            seq,
            len: 8,
            tag: seq,
            notify: false,
        },
    }
}

/// Sender-side: any ack/nack interleaving keeps the sent list a sorted
/// window and never resurrects acknowledged packets.
#[test]
fn sender_window_invariants() {
    forall(256, 0x6A_0001, |g| {
        let ops = g.vec_of(1, 200, |g| (g.u8_in(0, 2), g.u64_in(0, 39)));
        let mut c = Connection::new(NodeId(1));
        let mut highest_acked = 0u64;
        let mut sent_count = 0u64;
        let mut now = SimTime::ZERO;
        for (op, arg) in ops {
            now += SimTime::from_ns(10);
            match op {
                0 => {
                    // transmit the next packet
                    let seq = c.assign_seq();
                    c.record_sent(data(seq), now);
                    sent_count += 1;
                }
                1 => {
                    // cumulative ack; a real receiver can only ack what was
                    // actually sent, so clamp to the sent window
                    let ack = arg.min(sent_count);
                    if ack > highest_acked {
                        highest_acked = ack;
                    }
                    c.on_ack(ack);
                }
                _ => {
                    // nack: retransmit from arg
                    let re = c.on_nack(arg, now);
                    for p in &re {
                        assert!(p.seq().unwrap() >= arg);
                        assert!(
                            p.seq().unwrap() >= highest_acked,
                            "retransmitted an acked packet"
                        );
                    }
                }
            }
            // invariant: the sent window is sorted and above all acks seen
            let mut prev = None;
            if let Some(front) = c.oldest_unacked() {
                assert!(front.packet.seq().unwrap() >= highest_acked);
                prev = front.packet.seq();
            }
            let _ = prev;
        }
    });
}

/// Receiver-side: present a random arrival order (with duplicates) of
/// sequences 0..n; the accept set is exactly 0..n, each exactly once,
/// accepted in increasing order.
#[test]
fn receiver_accepts_each_seq_once_in_order() {
    forall(256, 0x6A_0002, |g| {
        let n = g.u64_in(1, 29);
        let extra = g.vec_of(0, 60, |g| g.u64_in(0, 29));
        let seed = g.any_u64();
        // Build an arrival multiset: every seq at least once plus noise.
        let mut arrivals: Vec<Seq> = (0..n).collect();
        arrivals.extend(extra.into_iter().filter(|s| *s < n));
        // Deterministic shuffle.
        let mut rng = gmsim_des::SimRng::new(seed);
        rng.shuffle(&mut arrivals);

        let mut c = Connection::new(NodeId(0));
        let mut accepted = Vec::new();
        // Loop until everything is delivered: out-of-order packets are
        // dropped (the real system nacks and the sender retransmits, which
        // we emulate by replaying the arrival list).
        let mut guard = 0;
        while accepted.len() < n as usize {
            guard += 1;
            assert!(guard < 1000, "no progress");
            for &seq in &arrivals {
                match c.classify_rx(seq) {
                    RxVerdict::Accept => accepted.push(seq),
                    RxVerdict::Duplicate | RxVerdict::OutOfOrder { .. } => {}
                }
            }
        }
        assert_eq!(accepted, (0..n).collect::<Vec<_>>());
        // Everything further is a duplicate.
        for seq in 0..n {
            assert_eq!(c.classify_rx(seq), RxVerdict::Duplicate);
        }
        assert_eq!(c.ack_value(), n);
    });
}

/// peek_rx never mutates: peeking any sequence any number of times
/// leaves the ack value unchanged.
#[test]
fn peek_is_pure() {
    forall(256, 0x6A_0003, |g| {
        let accepts = g.u64_in(0, 19);
        let probes = g.vec_of(0, 40, |g| g.u64_in(0, 39));
        let mut c = Connection::new(NodeId(0));
        for s in 0..accepts {
            assert_eq!(c.classify_rx(s), RxVerdict::Accept);
        }
        let ack = c.ack_value();
        for p in probes {
            let _ = c.peek_rx(p);
            assert_eq!(c.ack_value(), ack);
        }
    });
}

/// Timeout semantics: a timeout for a (seq, sent_at) pair fires iff
/// that exact transmission is still outstanding.
#[test]
fn timeouts_fire_iff_live() {
    forall(64, 0x6A_0004, |g| {
        let ack_to = g.u64_in(0, 9);
        let mut c = Connection::new(NodeId(1));
        let mut sent_ats = Vec::new();
        for i in 0..10u64 {
            let seq = c.assign_seq();
            let at = SimTime::from_ns(100 * (i + 1));
            c.record_sent(data(seq), at);
            sent_ats.push(at);
        }
        c.on_ack(ack_to);
        for (seq, &at) in (0u64..10).zip(&sent_ats) {
            let re = c.on_timeout(seq, at, SimTime::from_ms(1));
            if seq < ack_to {
                assert!(re.is_empty(), "acked seq {seq} retransmitted");
            } else {
                assert!(!re.is_empty(), "live seq {seq} ignored");
                // go-back-N: the retransmission covers the tail
                assert_eq!(re[0].seq().unwrap(), seq);
                break; // sent_at values were refreshed; later probes stale by design
            }
        }
    });
}

/// Reference model for one direction of a connection: the sender half is a
/// set of outstanding sequences plus a cumulative-ack floor, the receiver
/// half just counts accepted packets. Every operation on the real
/// [`Connection`] is mirrored here, and the two must agree at every step.
struct RefModel {
    /// Next sequence the sender hands out.
    next_tx: Seq,
    /// Everything at or above this has *not* been cumulatively acked.
    ack_floor: Seq,
    /// Sequences recorded as sent and not yet acked, with their latest
    /// `sent_at` stamp.
    outstanding: Vec<(Seq, SimTime)>,
}

impl RefModel {
    fn new(start: Seq) -> Self {
        Self {
            next_tx: start,
            ack_floor: start,
            outstanding: Vec::new(),
        }
    }

    fn in_flight(&self) -> usize {
        self.outstanding.len()
    }
}

/// Satellite: random interleavings of assign/record/ack/nack/timeout checked
/// against the reference model. Each sequence completes (is drained by a
/// cumulative ack) exactly once, acks are monotone, and a *stale* timeout —
/// one whose `(seq, sent_at)` no longer matches a live transmission — never
/// retransmits anything.
#[test]
fn interleavings_match_reference_model() {
    forall(384, 0x6A_0005, |g| {
        // Exercise the wrap boundary in a slice of cases: start close enough
        // to Seq::MAX that ~200 assignments step across it.
        let start = if g.chance(0.25) {
            Seq::MAX - g.u64_in(0, 60)
        } else {
            g.u64_in(0, 1000)
        };
        let ops = g.vec_of(1, 120, |g| (g.u8_in(0, 3), g.u64_in(0, 50), g.any_u64()));
        let mut c = Connection::with_initial_seq(NodeId(1), start);
        let mut model = RefModel::new(start);
        let mut completed = 0u64; // sequences drained by cumulative acks
        let mut last_ack_len = 0usize; // monotone: acked count never shrinks
        let mut now = SimTime::ZERO;
        for (op, small, wide) in ops {
            now += SimTime::from_ns(10);
            match op {
                0 => {
                    // assign + record a fresh transmission
                    let seq = c.assign_seq();
                    assert_eq!(seq, model.next_tx, "sequence assignment diverged");
                    c.record_sent(data(seq), now);
                    model.outstanding.push((seq, now));
                    model.next_tx = model.next_tx.wrapping_add(1);
                }
                1 => {
                    // cumulative ack of the first `k` outstanding packets
                    if model.outstanding.is_empty() {
                        continue;
                    }
                    let k = (small as usize % model.outstanding.len()) + 1;
                    let ack = model.outstanding[k - 1].0.wrapping_add(1);
                    let drained = c.on_ack(ack);
                    assert_eq!(drained, k, "ack drained a different count");
                    model.outstanding.drain(..k);
                    model.ack_floor = ack;
                    completed += k as u64;
                }
                2 => {
                    // nack for a random live packet: go-back-N retransmits
                    // the tail from that point, refreshing sent_at stamps
                    if model.outstanding.is_empty() {
                        continue;
                    }
                    let i = small as usize % model.outstanding.len();
                    let from = model.outstanding[i].0;
                    let re = c.on_nack(from, now);
                    assert_eq!(re.len(), model.outstanding.len() - i);
                    for (p, (mseq, mat)) in re.iter().zip(&mut model.outstanding[i..]) {
                        assert_eq!(p.seq().unwrap(), *mseq);
                        *mat = now;
                    }
                }
                _ => {
                    // timeout probe: half the time aim at a live (seq,
                    // sent_at) pair, half the time at a fabricated stale one
                    let (seq, sent_at) = if !model.outstanding.is_empty() && wide % 2 == 0 {
                        let i = small as usize % model.outstanding.len();
                        model.outstanding[i]
                    } else {
                        (wide, SimTime::from_ns(wide % 7))
                    };
                    // A timeout fires iff that exact transmission is live.
                    let live_at = model
                        .outstanding
                        .iter()
                        .position(|&(s, t)| s == seq && t == sent_at);
                    let re = c.on_timeout(seq, sent_at, now);
                    if let Some(i) = live_at {
                        // go-back-N: the tail from that packet, refreshed
                        assert_eq!(re.len(), model.outstanding.len() - i);
                        for (p, (mseq, mat)) in re.iter().zip(&mut model.outstanding[i..]) {
                            assert_eq!(p.seq().unwrap(), *mseq);
                            *mat = now;
                        }
                    } else {
                        assert!(re.is_empty(), "stale timeout retransmitted {re:?}");
                    }
                }
            }
            // Shared invariants after every step.
            assert_eq!(c.in_flight(), model.in_flight(), "window size diverged");
            let acked_len = completed as usize;
            assert!(acked_len >= last_ack_len, "cumulative ack went backwards");
            last_ack_len = acked_len;
            match (c.oldest_unacked(), model.outstanding.first()) {
                (Some(e), Some(&(mseq, mat))) => {
                    assert_eq!(e.packet.seq().unwrap(), mseq);
                    assert_eq!(e.sent_at, mat);
                }
                (None, None) => {}
                (a, b) => panic!("oldest mismatch: {:?} vs {:?}", a.map(|e| e.sent_at), b),
            }
        }
        // Exactly-once completion: everything acked was assigned once, and
        // nothing outstanding was ever drained.
        assert_eq!(
            completed + model.outstanding.len() as u64,
            model.next_tx.wrapping_sub(start),
        );
    });
}
