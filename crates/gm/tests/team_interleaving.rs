//! Adversarial team interleaving: two teams whose memberships overlap on
//! shared nodes run concurrent barrier streams on the *same* port of the
//! same NIC. Nothing may cross-deliver: every completion must belong to
//! the team that posted it, every round must complete on exactly the
//! team's members, and the shorter stream must finish while the longer
//! one is still running.

use gmsim_des::{RunOutcome, SimTime};
use gmsim_gm::cluster::ClusterBuilder;
use gmsim_gm::{GlobalPort, GmConfig, NodeId, TeamId};
use gmsim_lanai::NicModel;
use nic_barrier::nic::stats_of;
use nic_barrier::programs::{decode_team_note, MultiTeamBarrierLoop};
use nic_barrier::{BarrierExtension, BarrierGroup, Descriptor, Team};
use std::collections::HashMap;

const TEAM_A: TeamId = TeamId(1);
const TEAM_B: TeamId = TeamId(2);
const ROUNDS_A: u64 = 41;
const ROUNDS_B: u64 = 29;

/// Team A = nodes {0, 1, 2}, team B = nodes {1, 2, 3}: nodes 1 and 2
/// serve both teams on port 1. Per-node start skew plus coprime round
/// counts drift the two streams through every relative phase.
fn run_overlapping_teams() -> gmsim_gm::cluster::Cluster {
    let members_a = [0usize, 1, 2];
    let members_b = [1usize, 2, 3];
    let group = |members: &[usize]| {
        BarrierGroup::new(members.iter().map(|&n| GlobalPort::new(n, 1)).collect())
    };
    let team_a = Team::new(TEAM_A, group(&members_a));
    let team_b = Team::new(TEAM_B, group(&members_b));

    let mut loops: Vec<MultiTeamBarrierLoop> =
        (0..4).map(|_| MultiTeamBarrierLoop::new()).collect();
    for (rank, &node) in members_a.iter().enumerate() {
        loops[node].push(&team_a, rank, Descriptor::Pe, ROUNDS_A);
    }
    for (rank, &node) in members_b.iter().enumerate() {
        loops[node].push(&team_b, rank, Descriptor::Pe, ROUNDS_B);
    }

    let mut b = ClusterBuilder::new(4)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    for (node, barrier_loop) in loops.into_iter().enumerate() {
        // Staggered starts: each node joins later than the last, so the
        // teams' first rounds interleave maximally adversarially.
        b = b.program(
            GlobalPort::new(node, 1),
            Box::new(barrier_loop),
            SimTime::from_us(17 * node as u64),
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent, "interleaved teams hung");
    sim.into_world()
}

#[test]
fn overlapping_teams_never_cross_deliver_flags() {
    let cluster = run_overlapping_teams();

    // Every note must decode as a (team, round) completion attributed to a
    // node that is actually a member of that team.
    let members: HashMap<TeamId, Vec<u64>> =
        HashMap::from([(TEAM_A, vec![0, 1, 2]), (TEAM_B, vec![1, 2, 3])]);
    let mut counts: HashMap<(TeamId, u64), u64> = HashMap::new();
    for note in &cluster.notes {
        let (team, round) = decode_team_note(note.tag).expect("unknown note tag");
        assert!(
            members[&team].contains(&(note.node.0 as u64)),
            "node {} completed a round of {team:?} it is not a member of",
            note.node.0
        );
        *counts.entry((team, round)).or_default() += 1;
    }

    // Each team's every round completed on exactly its three members —
    // a cross-delivered flag would complete a round early (count > 3 for
    // some round, or a phantom round beyond the team's schedule).
    for round in 0..ROUNDS_A {
        assert_eq!(counts.get(&(TEAM_A, round)), Some(&3), "round {round} of A");
    }
    for round in 0..ROUNDS_B {
        assert_eq!(counts.get(&(TEAM_B, round)), Some(&3), "round {round} of B");
    }
    assert_eq!(
        counts.len(),
        (ROUNDS_A + ROUNDS_B) as usize,
        "phantom (team, round) completions appeared"
    );

    // B's stream (29 rounds) must drain while A's (41 rounds) continues:
    // independent progress, not lockstep serialization.
    let last_of = |team: TeamId| {
        cluster
            .notes
            .iter()
            .filter(|n| decode_team_note(n.tag).map(|(t, _)| t) == Some(team))
            .map(|n| n.at)
            .max()
            .unwrap()
    };
    assert!(
        last_of(TEAM_B) < last_of(TEAM_A),
        "the shorter team stream should finish first"
    );

    // The shared nodes really multiplexed both teams on one port.
    for node in [1usize, 2] {
        let stats = stats_of(&cluster, node);
        assert_eq!(stats.completions, ROUNDS_A + ROUNDS_B, "node {node}");
        assert!(
            stats.concurrent_peak >= 2,
            "node {node} never held both teams concurrently"
        );
    }
    for (node, expected) in [(0usize, ROUNDS_A), (3usize, ROUNDS_B)] {
        assert_eq!(
            stats_of(&cluster, node).completions,
            expected,
            "node {node}"
        );
    }
}

#[test]
fn shared_node_keeps_team_flag_arrays_separate_under_skew() {
    // Same topology, but run twice with the teams' start order flipped by
    // giving B's exclusive node the earliest start. If any per-team state
    // leaked through the shared (port, endpoint) record, the two runs
    // would disagree on some team's round count.
    let cluster = run_overlapping_teams();
    let total_notes = cluster.notes.len() as u64;
    assert_eq!(total_notes, 3 * ROUNDS_A + 3 * ROUNDS_B);
    // Nodes outside a team never observe its completions.
    assert!(cluster
        .notes
        .iter()
        .all(|n| decode_team_note(n.tag).is_some()));
    let a_on_node3 = cluster
        .notes
        .iter()
        .filter(|n| n.node == NodeId(3))
        .filter(|n| decode_team_note(n.tag).unwrap().0 == TEAM_A)
        .count();
    assert_eq!(a_on_node3, 0, "team A flags leaked to non-member node 3");
}
