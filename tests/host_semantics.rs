//! Host-model semantics: program-order action timing, event queueing under
//! load, and send-token flow control at the cluster level.

use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::{GlobalPort, GmConfig, GmEvent, HostCtx, HostProgram};
use nic_barrier_suite::lanai::NicModel;

struct Script {
    acts: Vec<fn(&mut HostCtx)>,
}
impl HostProgram for Script {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        for a in &self.acts {
            a(ctx);
        }
    }
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if matches!(ev, GmEvent::Recv { .. }) {
            ctx.provide_recv(1);
            ctx.note(0xEC);
        }
    }
}

/// Compute before a send delays the send by exactly the compute time: the
/// receiver sees the message one compute-quantum later.
#[test]
fn compute_delays_subsequent_send() {
    let arrival = |precompute_us: u64| -> SimTime {
        let acts: Vec<fn(&mut HostCtx)> = if precompute_us == 0 {
            vec![|ctx| ctx.send(GlobalPort::new(1, 1), 8, 1)]
        } else {
            vec![|ctx| ctx.compute(SimTime::from_us(250)), |ctx| {
                ctx.send(GlobalPort::new(1, 1), 8, 1)
            }]
        };
        let mut sim = ClusterBuilder::new(2)
            .config(GmConfig::paper_host(NicModel::LANAI_4_3))
            .program(
                GlobalPort::new(0, 1),
                Box::new(Script { acts }),
                SimTime::ZERO,
            )
            .program(
                GlobalPort::new(1, 1),
                Box::new(Script { acts: vec![] }),
                SimTime::ZERO,
            )
            .build();
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        sim.world()
            .notes
            .iter()
            .find(|n| n.tag == 0xEC)
            .expect("message not received")
            .at
    };
    let base = arrival(0);
    let delayed = arrival(250);
    assert_eq!(delayed - base, SimTime::from_us(250));
}

/// Back-to-back sends serialize at the host by exactly the Send overhead.
#[test]
fn sends_serialize_at_send_overhead() {
    struct Burst;
    impl HostProgram for Burst {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            for tag in 0..4 {
                ctx.send(GlobalPort::new(1, 1), 8, tag);
            }
        }
        fn on_event(&mut self, _: &GmEvent, _: &mut HostCtx) {}
    }
    struct Stamper;
    impl HostProgram for Stamper {
        fn on_start(&mut self, _: &mut HostCtx) {}
        fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
            if let GmEvent::Recv { tag, .. } = ev {
                ctx.provide_recv(1);
                ctx.note(0xAB00 | *tag);
            }
        }
    }
    let mut sim = ClusterBuilder::new(2)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .program(GlobalPort::new(0, 1), Box::new(Burst), SimTime::ZERO)
        .program(GlobalPort::new(1, 1), Box::new(Stamper), SimTime::ZERO)
        .build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let times: Vec<SimTime> = (0..4u64)
        .map(|tag| {
            sim.world()
                .notes
                .iter()
                .find(|n| n.tag == 0xAB00 | tag)
                .unwrap()
                .at
        })
        .collect();
    // In-order arrival (same reliable stream), spaced by at least some
    // serialization (host posts are 8us apart; NIC/host pipelines may
    // compress but never reorder).
    for w in times.windows(2) {
        assert!(w[0] < w[1], "delivery out of order: {times:?}");
    }
}

/// Events queued while the host is busy are processed back to back, each
/// paying HRecv, in arrival order.
#[test]
fn busy_host_drains_event_queue_in_order() {
    struct BusySink {
        order: Vec<u64>,
    }
    impl HostProgram for BusySink {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            // Hog the host long enough for all messages to arrive.
            ctx.compute(SimTime::from_ms(1));
        }
        fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
            if let GmEvent::Recv { tag, .. } = ev {
                self.order.push(*tag);
                ctx.provide_recv(1);
                ctx.note(0xD0_0000 | (self.order.len() as u64));
            }
        }
    }
    struct Burst;
    impl HostProgram for Burst {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            for tag in 0..5 {
                ctx.send(GlobalPort::new(1, 1), 8, tag);
            }
        }
        fn on_event(&mut self, _: &GmEvent, _: &mut HostCtx) {}
    }
    let mut sim = ClusterBuilder::new(2)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .program(GlobalPort::new(0, 1), Box::new(Burst), SimTime::ZERO)
        .program(
            GlobalPort::new(1, 1),
            Box::new(BusySink { order: vec![] }),
            SimTime::ZERO,
        )
        .build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let cl = sim.world();
    // All five processed, the first no earlier than the 1ms compute ends,
    // consecutive ones exactly HRecv apart (queue drain).
    let times: Vec<SimTime> = (1..=5u64)
        .map(|i| cl.notes.iter().find(|n| n.tag == 0xD0_0000 | i).unwrap().at)
        .collect();
    assert!(times[0] >= SimTime::from_ms(1));
    let hrecv = cl.config().host_recv_overhead;
    for w in times.windows(2) {
        assert_eq!(w[1] - w[0], hrecv, "queue drain spacing");
    }
}

/// Exhausting send tokens is a hard error (GM processes must respect flow
/// control) — the cluster asserts rather than silently dropping.
#[test]
#[should_panic(expected = "send tokens exhausted")]
fn send_token_exhaustion_is_loud() {
    struct Flood;
    impl HostProgram for Flood {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            for tag in 0..64 {
                ctx.send(GlobalPort::new(1, 1), 8, tag);
            }
        }
        fn on_event(&mut self, _: &GmEvent, _: &mut HostCtx) {}
    }
    struct Sink;
    impl HostProgram for Sink {
        fn on_start(&mut self, _: &mut HostCtx) {}
        fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
            if matches!(ev, GmEvent::Recv { .. }) {
                ctx.provide_recv(1);
            }
        }
    }
    let mut sim = ClusterBuilder::new(2)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .program(GlobalPort::new(0, 1), Box::new(Flood), SimTime::ZERO)
        .program(GlobalPort::new(1, 1), Box::new(Sink), SimTime::ZERO)
        .build();
    sim.run();
}
