//! Integration tests of the GM substrate itself (no barriers): send
//! completion callbacks, receive-token flow control, incast contention,
//! loopback, and trace determinism.

use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::{GlobalPort, GmConfig, GmEvent, HostCtx, HostProgram};
use nic_barrier_suite::lanai::NicModel;

/// Sends `count` messages with completion callbacks and records both the
/// `Sent` events and any replies.
struct NotifySender {
    peer: GlobalPort,
    count: u64,
    sent_events: u64,
}

impl HostProgram for NotifySender {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        for tag in 0..self.count {
            ctx.send_notify(self.peer, 128, tag);
        }
    }
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if let GmEvent::Sent { tag } = ev {
            self.sent_events += 1;
            ctx.note(0x5E27_0000 | *tag);
        }
    }
}

struct CountingSink {
    received: Vec<u64>,
}

impl HostProgram for CountingSink {
    fn on_start(&mut self, _: &mut HostCtx) {}
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if let GmEvent::Recv { tag, .. } = ev {
            self.received.push(*tag);
            ctx.provide_recv(1);
            ctx.note(0x2EC0_0000 | *tag);
        }
    }
}

#[test]
fn send_completion_events_are_delivered() {
    let mut sim = ClusterBuilder::new(2)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .program(
            GlobalPort::new(0, 1),
            Box::new(NotifySender {
                peer: GlobalPort::new(1, 1),
                count: 5,
                sent_events: 0,
            }),
            SimTime::ZERO,
        )
        .program(
            GlobalPort::new(1, 1),
            Box::new(CountingSink { received: vec![] }),
            SimTime::ZERO,
        )
        .build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let cl = sim.world();
    let sent_notes = cl
        .notes
        .iter()
        .filter(|n| n.tag & 0x5E27_0000 == 0x5E27_0000)
        .count();
    let recv_notes = cl
        .notes
        .iter()
        .filter(|n| n.tag & 0x2EC0_0000 == 0x2EC0_0000)
        .count();
    assert_eq!(sent_notes, 5, "every notify send must complete");
    assert_eq!(recv_notes, 5);
    // A Sent event only fires after the ack round trip, so it must come
    // after the receiver saw the message.
    let first_sent = cl
        .notes
        .iter()
        .filter(|n| n.tag & 0x5E27_0000 == 0x5E27_0000)
        .map(|n| n.at)
        .min()
        .unwrap();
    let first_recv_rdma = cl
        .notes
        .iter()
        .filter(|n| n.tag & 0x2EC0_0000 == 0x2EC0_0000)
        .map(|n| n.at)
        .min()
        .unwrap();
    // Both exist; the ack leaves the receiver before host processing, so
    // we only assert both happened within the run.
    assert!(first_sent > SimTime::ZERO && first_recv_rdma > SimTime::ZERO);
}

/// Receiver-not-ready flow control: the receiver provides zero buffers at
/// start and only provides them later; GM must nack/retransmit until
/// delivery succeeds, and deliver exactly once.
struct StingySink {
    provide_at_all: bool,
    received: u64,
}

impl HostProgram for StingySink {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        // Withdraw the default tokens is not possible; instead this test
        // uses a config with zero default recv tokens (see below) and
        // provides them after a long compute.
        if self.provide_at_all {
            ctx.compute(SimTime::from_us(500));
            ctx.provide_recv(4);
        }
    }
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if matches!(ev, GmEvent::Recv { .. }) {
            self.received += 1;
            ctx.provide_recv(1);
            ctx.note(0xF10C + self.received);
        }
    }
}

struct BlindSender {
    peer: GlobalPort,
}

impl HostProgram for BlindSender {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        ctx.send(self.peer, 64, 1);
        ctx.send(self.peer, 64, 2);
    }
    fn on_event(&mut self, _: &GmEvent, _: &mut HostCtx) {}
}

#[test]
fn receiver_not_ready_is_survivable() {
    let mut config = GmConfig::paper_host(NicModel::LANAI_4_3);
    config.recv_tokens_per_port = 0; // ports open with no buffers
    let mut sim = ClusterBuilder::new(2)
        .config(config)
        .program(
            GlobalPort::new(0, 1),
            Box::new(BlindSender {
                peer: GlobalPort::new(1, 1),
            }),
            SimTime::ZERO,
        )
        .program(
            GlobalPort::new(1, 1),
            Box::new(StingySink {
                provide_at_all: true,
                received: 0,
            }),
            SimTime::ZERO,
        )
        .build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let cl = sim.world();
    assert_eq!(
        cl.nodes[1].mcp.core.stats.data_delivered, 2,
        "both delivered"
    );
    assert!(
        cl.nodes[1].mcp.core.stats.rnr_refusals > 0,
        "RNR path exercised"
    );
    assert!(cl.nodes[0].mcp.core.stats.retx > 0, "sender had to retry");
    // Exactly-once: two Recv notes, not more.
    assert_eq!(
        cl.notes
            .iter()
            .filter(|n| n.tag > 0xF10C && n.tag <= 0xF10C + 2)
            .count(),
        2
    );
}

/// Incast: seven senders to one receiver; all messages arrive exactly once
/// and the shared link serializes them (total span exceeds the one-message
/// latency several times over).
#[test]
fn incast_serializes_on_the_shared_link() {
    let n = 8;
    let mut b = ClusterBuilder::new(n).config(GmConfig::paper_host(NicModel::LANAI_4_3));
    for src in 1..n {
        b = b.program(
            GlobalPort::new(src, 1),
            Box::new(BlindSender {
                peer: GlobalPort::new(0, 1),
            }),
            SimTime::ZERO,
        );
    }
    b = b.program(
        GlobalPort::new(0, 1),
        Box::new(CountingSink { received: vec![] }),
        SimTime::ZERO,
    );
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let cl = sim.world();
    assert_eq!(
        cl.nodes[0].mcp.core.stats.data_delivered,
        2 * (n as u64 - 1)
    );
}

/// Same-node data messages (two ports on one NIC) never touch the fabric.
#[test]
fn loopback_data_skips_the_wire() {
    let mut sim = ClusterBuilder::new(1)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .program(
            GlobalPort::new(0, 1),
            Box::new(BlindSender {
                peer: GlobalPort::new(0, 2),
            }),
            SimTime::ZERO,
        )
        .program(
            GlobalPort::new(0, 2),
            Box::new(CountingSink { received: vec![] }),
            SimTime::ZERO,
        )
        .build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let cl = sim.world();
    assert_eq!(cl.nodes[0].mcp.core.stats.data_delivered, 2);
    assert_eq!(cl.fabric.stats().sends, 0, "no worm may touch the fabric");
}

/// Trace-level determinism across identical runs of a nontrivial workload.
#[test]
fn trace_fingerprints_are_reproducible() {
    let fingerprint = || {
        let mut sim = ClusterBuilder::new(4)
            .config(GmConfig::paper_host(NicModel::LANAI_4_3))
            .trace(1 << 14)
            .program(
                GlobalPort::new(0, 1),
                Box::new(NotifySender {
                    peer: GlobalPort::new(3, 1),
                    count: 8,
                    sent_events: 0,
                }),
                SimTime::ZERO,
            )
            .program(
                GlobalPort::new(3, 1),
                Box::new(CountingSink { received: vec![] }),
                SimTime::ZERO,
            )
            .build();
        sim.run();
        sim.world().tracer.fingerprint()
    };
    assert_eq!(fingerprint(), fingerprint());
}
