//! The reproduction gate: simulated results must stay on the paper's
//! published numbers (within the bands recorded in EXPERIMENTS.md). If a
//! refactor of the substrate or the firmware extension shifts the timing
//! model, these tests fail before the figures silently drift.
//!
//! Run in release for speed: `cargo test --release --test calibration`.

use nic_barrier_suite::lanai::NicModel;
use nic_barrier_suite::testbed::{best_gb_dim, Algorithm, BarrierExperiment, Descriptor};

fn within(value: f64, target: f64, tol_pct: f64) -> bool {
    (value - target).abs() / target * 100.0 <= tol_pct
}

fn run(n: usize, a: Algorithm, nic: NicModel) -> f64 {
    BarrierExperiment::new(n, a)
        .nic(nic)
        .rounds(120, 20)
        .run()
        .unwrap()
        .mean_us
}

#[test]
fn nic_pe_16_nodes_lanai43_is_102us() {
    let got = run(16, Algorithm::Nic(Descriptor::Pe), NicModel::LANAI_4_3);
    assert!(
        within(got, 102.14, 3.0),
        "measured {got:.2} vs paper 102.14"
    );
}

#[test]
fn pe_factor_16_nodes_lanai43_is_1_78() {
    let nic = run(16, Algorithm::Nic(Descriptor::Pe), NicModel::LANAI_4_3);
    let host = run(16, Algorithm::Host(Descriptor::Pe), NicModel::LANAI_4_3);
    let f = host / nic;
    assert!(within(f, 1.78, 4.0), "factor {f:.2} vs paper 1.78");
}

#[test]
fn pe_factor_8_nodes_lanai43_is_1_66() {
    let nic = run(8, Algorithm::Nic(Descriptor::Pe), NicModel::LANAI_4_3);
    let host = run(8, Algorithm::Host(Descriptor::Pe), NicModel::LANAI_4_3);
    let f = host / nic;
    assert!(within(f, 1.66, 4.0), "factor {f:.2} vs paper 1.66");
}

#[test]
fn nic_pe_8_nodes_lanai72_is_49us() {
    let got = run(8, Algorithm::Nic(Descriptor::Pe), NicModel::LANAI_7_2);
    assert!(within(got, 49.25, 3.0), "measured {got:.2} vs paper 49.25");
}

#[test]
fn host_pe_8_nodes_lanai72_is_90us() {
    let got = run(8, Algorithm::Host(Descriptor::Pe), NicModel::LANAI_7_2);
    assert!(within(got, 90.24, 3.0), "measured {got:.2} vs paper 90.24");
}

#[test]
fn pe_factor_8_nodes_lanai72_is_1_83() {
    let nic = run(8, Algorithm::Nic(Descriptor::Pe), NicModel::LANAI_7_2);
    let host = run(8, Algorithm::Host(Descriptor::Pe), NicModel::LANAI_7_2);
    let f = host / nic;
    assert!(within(f, 1.83, 4.0), "factor {f:.2} vs paper 1.83");
}

#[test]
fn nic_gb_16_nodes_lanai43_is_152us() {
    let (_, m) =
        best_gb_dim(BarrierExperiment::new(16, Algorithm::Nic(Descriptor::gb(1))).rounds(80, 10));
    assert!(
        within(m.mean_us, 152.27, 5.0),
        "measured {:.2} vs paper 152.27",
        m.mean_us
    );
}

#[test]
fn nic_gb_loses_to_host_gb_at_two_nodes() {
    // §6: "The NIC-based GB barrier performed worse for the two node
    // barrier than the host-based GB barrier because of the overhead of
    // processing the barrier algorithm at the NIC."
    let nic = run(2, Algorithm::Nic(Descriptor::gb(1)), NicModel::LANAI_4_3);
    let host = run(2, Algorithm::Host(Descriptor::gb(1)), NicModel::LANAI_4_3);
    assert!(
        nic > host,
        "NIC-GB(2)={nic:.2} must exceed host-GB(2)={host:.2}"
    );
}

#[test]
fn nic_pe_is_best_everywhere() {
    // §6: "the NIC-based PE barrier performed better than all other
    // barriers."
    for n in [2usize, 4, 8, 16] {
        let nic_pe = run(n, Algorithm::Nic(Descriptor::Pe), NicModel::LANAI_4_3);
        for other in [
            Algorithm::Host(Descriptor::Pe),
            Algorithm::Nic(Descriptor::gb(2)),
            Algorithm::Host(Descriptor::gb(2)),
        ] {
            let o = run(n, other, NicModel::LANAI_4_3);
            assert!(
                nic_pe < o,
                "n={n}: NIC-PE {nic_pe:.2} must beat {} {o:.2}",
                other.name()
            );
        }
    }
}

#[test]
fn host_pe_beats_host_gb() {
    // §6: "The host-based PE barrier performed better than the host-based
    // GB barrier."
    for n in [4usize, 8, 16] {
        let pe = run(n, Algorithm::Host(Descriptor::Pe), NicModel::LANAI_4_3);
        let (_, gb) = best_gb_dim(
            BarrierExperiment::new(n, Algorithm::Host(Descriptor::gb(1))).rounds(80, 10),
        );
        assert!(
            pe < gb.mean_us,
            "n={n}: host-PE {pe:.2} vs host-GB {:.2}",
            gb.mean_us
        );
    }
}

#[test]
fn faster_nic_helps_both_but_nic_based_more() {
    // §6: "the faster NIC processor improved the performance of all
    // implementations", and the 8-node factor grew 1.66 → 1.83.
    for alg in [
        Algorithm::Nic(Descriptor::Pe),
        Algorithm::Host(Descriptor::Pe),
    ] {
        let slow = run(8, alg, NicModel::LANAI_4_3);
        let fast = run(8, alg, NicModel::LANAI_7_2);
        assert!(fast < slow, "{}: {fast:.2} !< {slow:.2}", alg.name());
    }
    let f43 = run(8, Algorithm::Host(Descriptor::Pe), NicModel::LANAI_4_3)
        / run(8, Algorithm::Nic(Descriptor::Pe), NicModel::LANAI_4_3);
    let f72 = run(8, Algorithm::Host(Descriptor::Pe), NicModel::LANAI_7_2)
        / run(8, Algorithm::Nic(Descriptor::Pe), NicModel::LANAI_7_2);
    assert!(
        f72 > f43,
        "factor must grow with NIC speed: {f43:.2} -> {f72:.2}"
    );
}

#[test]
fn factor_grows_with_system_size() {
    // §2.2: "The factor of improvement will also increase as the number of
    // nodes increases."
    let mut prev = 0.0;
    for n in [2usize, 4, 8, 16] {
        let f = run(n, Algorithm::Host(Descriptor::Pe), NicModel::LANAI_4_3)
            / run(n, Algorithm::Nic(Descriptor::Pe), NicModel::LANAI_4_3);
        assert!(
            f > prev,
            "factor not monotone at n={n}: {f:.2} <= {prev:.2}"
        );
        prev = f;
    }
}
