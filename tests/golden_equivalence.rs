//! Golden-equivalence property test for the schedule-IR refactor.
//!
//! The fixture `tests/data/golden_barriers.txt` was captured from the
//! pre-IR implementation — the hand-inlined PE/GB state machines in the
//! firmware extension and the dedicated host-baseline programs. This test
//! re-runs every configuration (N ∈ 2..=32, GB tree dimension ∈ 1..=4,
//! both the NIC-side and the host-side interpreter) through the compiled
//! [`Descriptor`] → `CollectiveSchedule` path and demands the **exact**
//! same virtual-time mean latency: simulated time is deterministic, so the
//! IR interpreters must be cost-model-identical to the code they replaced,
//! not merely close. Any drift — an extra `exec` charge, a reordered send,
//! a changed completion point — shows up as a bit-level f64 mismatch.
//!
//! Regenerate (only when the cost model itself intentionally changes):
//!
//! ```text
//! cargo run --release -p gmsim-bench --bin golden > tests/data/golden_barriers.txt
//! ```

use nic_barrier_suite::testbed::{run_all_with, Algorithm, BarrierExperiment, Descriptor};

const GOLDEN: &str = include_str!("data/golden_barriers.txt");

struct Row {
    family: &'static str,
    n: usize,
    dim: usize,
    mean_us: f64,
}

fn parse_fixture() -> Vec<Row> {
    GOLDEN
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut f = l.split_whitespace();
            let family = f.next().expect("family");
            let n = f.next().expect("n").parse().expect("n parses");
            let dim = f.next().expect("dim").parse().expect("dim parses");
            let mean_us = f.next().expect("mean").parse().expect("mean parses");
            Row {
                family: match family {
                    "nic-pe" => "nic-pe",
                    "host-pe" => "host-pe",
                    "nic-gb" => "nic-gb",
                    "host-gb" => "host-gb",
                    other => panic!("unknown family {other}"),
                },
                n,
                dim,
                mean_us,
            }
        })
        .collect()
}

fn algorithm(row: &Row) -> Algorithm {
    match row.family {
        "nic-pe" => Algorithm::Nic(Descriptor::Pe),
        "host-pe" => Algorithm::Host(Descriptor::Pe),
        "nic-gb" => Algorithm::Nic(Descriptor::gb(row.dim)),
        "host-gb" => Algorithm::Host(Descriptor::gb(row.dim)),
        _ => unreachable!(),
    }
}

#[test]
fn ir_interpreters_reproduce_pre_refactor_latencies_exactly() {
    let rows = parse_fixture();
    assert_eq!(rows.len(), 310, "fixture shape changed");
    let experiments: Vec<BarrierExperiment> = rows
        .iter()
        .map(|r| BarrierExperiment::new(r.n, algorithm(r)).rounds(40, 5))
        .collect();
    let measured = run_all_with(&experiments, |e| e.run().unwrap().mean_us);
    let mut mismatches = Vec::new();
    for (row, got) in rows.iter().zip(&measured) {
        // Exact bit-for-bit equality: the schedule IR must be a pure
        // refactor of the old state machines, with zero latency drift.
        if row.mean_us != *got {
            mismatches.push(format!(
                "{} n={} dim={}: golden {:.17e} vs measured {:.17e}",
                row.family, row.n, row.dim, row.mean_us, got
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} configurations drifted from the pre-IR capture:\n{}",
        mismatches.len(),
        rows.len(),
        mismatches.join("\n")
    );
}

#[test]
fn fixture_covers_the_full_grid() {
    let rows = parse_fixture();
    for n in 2usize..=32 {
        for family in ["nic-pe", "host-pe"] {
            assert!(
                rows.iter().any(|r| r.family == family && r.n == n),
                "missing {family} n={n}"
            );
        }
        for dim in 1usize..=4 {
            for family in ["nic-gb", "host-gb"] {
                assert!(
                    rows.iter()
                        .any(|r| r.family == family && r.n == n && r.dim == dim),
                    "missing {family} n={n} dim={dim}"
                );
            }
        }
    }
}
