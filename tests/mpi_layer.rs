//! End-to-end tests of the MPI-like layer (the paper's §8 "higher
//! communication layers" study): scripted processes over the full
//! simulated cluster, with barriers bound to the NIC-based or host-based
//! implementation.

use nic_barrier_suite::barrier::{BarrierExtension, BarrierGroup, ReduceOp};
use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::{ClusterBuilder, ClusterSim};
use nic_barrier_suite::gm::GmConfig;
use nic_barrier_suite::lanai::NicModel;
use nic_barrier_suite::mpi::{
    script, BarrierBinding, Buf, MpiConfig, MpiOp, MpiProcess, NOTE_MPI_DONE,
};

fn run_mpi(
    n: usize,
    config: MpiConfig,
    make_script: impl Fn(usize) -> Vec<MpiOp>,
) -> (ClusterSim, Vec<SimTime>) {
    let group = BarrierGroup::one_per_node(n, 1);
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    for rank in 0..n {
        b = b.program(
            group.member(rank),
            Box::new(MpiProcess::new(
                group.clone(),
                rank,
                config,
                make_script(rank),
            )),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let finishes: Vec<SimTime> = sim
        .world()
        .notes
        .iter()
        .filter(|nt| nt.tag == NOTE_MPI_DONE)
        .map(|nt| nt.at)
        .collect();
    (sim, finishes)
}

#[test]
fn all_ranks_finish_a_barrier_loop() {
    for binding in [
        BarrierBinding::NicPe,
        BarrierBinding::NicGb { dim: 2 },
        BarrierBinding::HostPe,
    ] {
        let config = MpiConfig {
            barrier: binding,
            ..MpiConfig::nic_based()
        };
        let (_, finishes) = run_mpi(6, config, |_| script().repeat(5, |b| b.barrier()).build());
        assert_eq!(finishes.len(), 6, "{binding:?}");
    }
}

#[test]
fn nic_bound_barrier_loop_is_faster_than_host_bound() {
    let mk = |_: usize| script().repeat(20, |b| b.barrier()).build();
    let (_, nic) = run_mpi(8, MpiConfig::nic_based(), mk);
    let (_, host) = run_mpi(8, MpiConfig::host_based(), mk);
    let nic_end = nic.iter().max().unwrap();
    let host_end = host.iter().max().unwrap();
    assert!(nic_end < host_end, "nic {nic_end:?} vs host {host_end:?}");
    // §2.2/§8 prediction: the layer widens the gap beyond raw GM's 1.64x.
    let ratio = host_end.as_us_f64() / nic_end.as_us_f64();
    assert!(
        ratio > 1.64,
        "MPI-layer factor {ratio:.2} should exceed raw GM"
    );
}

#[test]
fn ring_pass_delivers_in_order() {
    // Each rank sends its rank to the right neighbour R times; receives
    // from the left; token ring semantics must hold via tag matching.
    let n = 5;
    let (sim, finishes) = run_mpi(n, MpiConfig::nic_based(), |rank| {
        let right = (rank + 1) % n;
        let left = (rank + n - 1) % n;
        script()
            .repeat(10, |b| b.send(right, 64, 3).recv(left, 3))
            .build()
    });
    assert_eq!(finishes.len(), n);
    // No retransmissions needed on a clean fabric.
    for node in 0..n {
        assert_eq!(sim.world().nodes[node].mcp.core.stats.retx, 0);
    }
}

#[test]
fn bsp_superstep_app_runs_with_mixed_ops() {
    let n = 6;
    let (_, finishes) = run_mpi(n, MpiConfig::nic_based(), |rank| {
        let right = (rank + 1) % n;
        let left = (rank + n - 1) % n;
        script()
            .repeat(8, |b| {
                b.compute_us(30)
                    .send(right, 512, 1)
                    .send(left, 512, 2)
                    .recv(left, 1)
                    .recv(right, 2)
                    .barrier()
            })
            .build()
    });
    assert_eq!(finishes.len(), n);
    // Each superstep costs at least compute + one barrier; sanity lower
    // bound on the total runtime.
    let end = finishes.iter().max().unwrap().as_us_f64();
    assert!(end > 8.0 * (30.0 + 60.0), "end={end:.1}");
}

#[test]
fn bcast_from_nonzero_root_delivers_value() {
    let n = 7;
    let (sim, finishes) = run_mpi(n, MpiConfig::nic_based(), |_| {
        script().bcast(3, Buf::u64s(1).with_fill(909)).build()
    });
    assert_eq!(finishes.len(), n);
    let cl = sim.world();
    for node in 0..n {
        let p = cl.nodes[node]
            .program(nic_barrier_suite::gm::PortId(1))
            .unwrap();
        // downcast through Any is not exposed for programs; instead verify
        // via completion count per node
        let _ = p;
    }
    // all ranks completed exactly one collective each; the rotated tree
    // must deliver the value everywhere (validated through MpiProcess in
    // unit tests; here we validate the full-system completion).
}

#[test]
fn allreduce_value_is_visible_in_stats() {
    let n = 4;
    let group = BarrierGroup::one_per_node(n, 1);
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    for rank in 0..n {
        b = b.program(
            group.member(rank),
            Box::new(MpiProcess::new(
                group.clone(),
                rank,
                MpiConfig::nic_based(),
                script()
                    .allreduce(ReduceOp::Sum, Buf::u64s(1).with_fill((rank + 1) as u64))
                    .build(),
            )),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    // 1+2+3+4 = 10 at every rank.
    for node in 0..n {
        let prog = sim.world().nodes[node]
            .program(nic_barrier_suite::gm::PortId(1))
            .expect("program");
        // HostProgram has no as_any; we check via the note instead: the
        // script finished on all ranks.
        let _ = prog;
    }
    let finishes = sim
        .world()
        .notes
        .iter()
        .filter(|nt| nt.tag == NOTE_MPI_DONE)
        .count();
    assert_eq!(finishes, n);
}

#[test]
fn scan_is_nic_offloaded_and_completes_everywhere() {
    // MPI_Scan rides the same compiled-schedule path as the barrier: the
    // host posts one collective token and the firmware runs the
    // Hillis–Steele program. Works at non-powers of two too.
    for n in [3usize, 4, 7, 8] {
        let (sim, finishes) = run_mpi(n, MpiConfig::nic_based(), |rank| {
            script()
                .scan(ReduceOp::Sum, Buf::u64s(1).with_fill((rank + 1) as u64))
                .build()
        });
        assert_eq!(finishes.len(), n, "n={n}");
        // Proof of NIC offload: SCAN packets flowed through the firmware
        // extension (all ranks but the last send at least one).
        let scan_msgs: u64 = (0..n)
            .map(|node| nic_barrier_suite::barrier::nic::stats_of(sim.world(), node).scan_msgs)
            .sum();
        assert!(scan_msgs > 0, "n={n}: no SCAN packets reached the NIC");
        // And the host never ran the algorithm: no point-to-point sends.
        for node in 0..n {
            assert_eq!(
                sim.world().nodes[node].mcp.core.stats.data_tx,
                0,
                "n={n} node={node}: scan must not fall back to host sends"
            );
        }
    }
}

#[test]
fn deadlocked_script_is_detected_not_hung() {
    // A recv with no matching send: the simulation drains (timers aside)
    // without the completion note — which is exactly how a user detects the
    // deadlock. The run must terminate (no livelock).
    let (sim, finishes) = run_mpi(2, MpiConfig::nic_based(), |rank| {
        if rank == 0 {
            script().recv(1, 42).build() // never sent
        } else {
            script().compute_us(1).build()
        }
    });
    assert_eq!(finishes.len(), 1, "only rank 1 finishes");
    assert!(sim.world().notes.iter().any(|n| n.tag == NOTE_MPI_DONE));
}
