//! §3.2 lifecycle tests: initialization and cleanup of barrier state when
//! processes die and endpoints are reused.
//!
//! The paper's motivating scenario: process A (node 0) initiates a barrier
//! with process B (node 1); B dies before the message arrives; A dies too;
//! replacements A′ and B′ reuse the same endpoints. Without the
//! record-then-reject-on-open protocol, B′ could consume A's stale message
//! and complete a barrier A′ never entered.

use nic_barrier_suite::barrier::nic::{pkt, record_stats_of, stats_of, BarrierExtension};
use nic_barrier_suite::barrier::programs::{decode_note, note_tag};
use nic_barrier_suite::barrier::BarrierGroup;
use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::{GmConfig, GmEvent, HostCtx, HostProgram};
use nic_barrier_suite::lanai::NicModel;

/// Process A: starts a 2-party barrier, then dies (closes its port) before
/// it can complete.
struct DoomedInitiator {
    group: BarrierGroup,
    rank: usize,
    die_after: SimTime,
}

impl HostProgram for DoomedInitiator {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        ctx.start_collective(self.group.pe_token(self.rank));
        // Die before the barrier can possibly complete: close the port.
        ctx.compute(self.die_after);
        ctx.close_port();
    }
    fn on_event(&mut self, _: &GmEvent, _: &mut HostCtx) {}
}

/// Replacement process: runs one barrier and notes completion.
struct Replacement {
    group: BarrierGroup,
    rank: usize,
    done: bool,
}

impl HostProgram for Replacement {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        ctx.start_collective(self.group.pe_token(self.rank));
    }
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if matches!(ev, GmEvent::BarrierComplete { .. }) && !self.done {
            self.done = true;
            ctx.note(note_tag(0));
        }
    }
}

/// The full A/B/A′/B′ scenario. B never starts at all (died before opening
/// its port); A's barrier message is recorded against B's closed port. A
/// dies. Then A′ and B′ start on the same endpoints and must complete
/// *their* barrier — driven by the §3.2 reject/resend protocol, since the
/// stale record for B's port is flushed back to A's endpoint (now owned by
/// A′, whose epoch differs, so nothing is wrongly resent).
#[test]
fn stale_barrier_message_does_not_leak_into_new_processes() {
    let group = BarrierGroup::one_per_node(2, 1);
    let mut sim = ClusterBuilder::new(2)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory())
        // A on node 0 port 1: initiates, dies at t=200us.
        .program(
            group.member(0),
            Box::new(DoomedInitiator {
                group: group.clone(),
                rank: 0,
                die_after: SimTime::from_us(200),
            }),
            SimTime::ZERO,
        )
        // B never starts. A′ takes over node 0 port 1 at t=1ms.
        .program(
            group.member(0),
            Box::new(Replacement {
                group: group.clone(),
                rank: 0,
                done: false,
            }),
            SimTime::from_ms(1),
        )
        // B′ takes over node 1 port 1 at t=1.2ms.
        .program(
            group.member(1),
            Box::new(Replacement {
                group: group.clone(),
                rank: 1,
                done: false,
            }),
            SimTime::from_us(1_200),
        )
        .build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let cl = sim.world();
    // Both replacements completed exactly one barrier.
    let done: Vec<_> = cl
        .notes
        .iter()
        .filter(|n| decode_note(n.tag).is_some())
        .collect();
    assert_eq!(done.len(), 2, "both A' and B' complete");
    // And only after B′ started: the stale record must not have completed
    // B′'s barrier against A's old message.
    for n in &done {
        assert!(
            n.at > SimTime::from_us(1_200),
            "completion at {:?} predates B' starting",
            n.at
        );
    }
    // The §3.2 machinery actually fired: node 1 recorded A's message while
    // its port was closed; A′'s later message (a different epoch of the
    // same endpoint) superseded it, so A's message can never complete
    // anything. When B′ opened, the surviving record was rejected back,
    // and A′ — same epoch, barrier still in flight — resent it.
    let r1 = record_stats_of(cl, 1);
    assert!(
        r1.superseded >= 1,
        "A's dead-process record must be superseded by A′'s"
    );
    assert_eq!(r1.queued_extra, 0, "no same-process duplicates");
    let s1 = stats_of(cl, 1);
    assert!(s1.rejects_sent >= 1, "B' should flush the recorded message");
    let s0 = stats_of(cl, 0);
    assert!(s0.rejects_received >= 1);
    assert!(s0.resends >= 1, "A′ must resend to complete its barrier");
}

/// The benign §3.2 case: the receiver's process simply hasn't started yet.
/// The sender's barrier message is recorded, rejected on open, and resent —
/// because the sender is still the same process (same epoch), the barrier
/// completes normally. "This may happen, if, for instance, the first
/// action of a program is to do a barrier in order to make sure all its
/// peers have started."
#[test]
fn barrier_before_peer_starts_completes_via_resend() {
    let group = BarrierGroup::one_per_node(2, 1);
    let mut sim = ClusterBuilder::new(2)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory())
        .program(
            group.member(0),
            Box::new(Replacement {
                group: group.clone(),
                rank: 0,
                done: false,
            }),
            SimTime::ZERO,
        )
        // The peer opens its port 5ms later.
        .program(
            group.member(1),
            Box::new(Replacement {
                group: group.clone(),
                rank: 1,
                done: false,
            }),
            SimTime::from_ms(5),
        )
        .build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let cl = sim.world();
    let done = cl
        .notes
        .iter()
        .filter(|n| decode_note(n.tag).is_some())
        .count();
    assert_eq!(done, 2);
    let s1 = stats_of(cl, 1);
    assert!(
        s1.rejects_sent >= 1,
        "late opener rejects the early message"
    );
    let s0 = stats_of(cl, 0);
    assert_eq!(s0.stale_rejects, 0, "sender is alive: reject is not stale");
    assert!(s0.resends >= 1, "sender must resend after the reject");
}

/// Closing a port mid-barrier aborts the NIC-side state (the paper's
/// benchmark constraint, §4.4, is that this never happens during
/// measurement — here we verify the firmware cleans up rather than leaks).
#[test]
fn close_aborts_inflight_collective() {
    let group = BarrierGroup::one_per_node(2, 1);
    let mut sim = ClusterBuilder::new(2)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory())
        .program(
            group.member(0),
            Box::new(DoomedInitiator {
                group: group.clone(),
                rank: 0,
                die_after: SimTime::from_us(100),
            }),
            SimTime::ZERO,
        )
        .build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let s0 = stats_of(sim.world(), 0);
    assert_eq!(s0.aborted, 1, "the in-flight barrier must be aborted");
    assert_eq!(s0.completions, 0);
}

/// REJECT packets must never be generated for ports that were never sent
/// anything — opening a fresh port is silent.
#[test]
fn opening_untouched_port_sends_nothing() {
    let group = BarrierGroup::one_per_node(2, 1);
    let mut sim = ClusterBuilder::new(2)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory())
        .program(
            group.member(0),
            Box::new(Replacement {
                group: group.clone(),
                rank: 0,
                done: false,
            }),
            SimTime::ZERO,
        )
        .program(
            group.member(1),
            Box::new(Replacement {
                group: group.clone(),
                rank: 1,
                done: false,
            }),
            SimTime::ZERO,
        )
        .build();
    sim.run();
    let cl = sim.world();
    for node in 0..2 {
        assert_eq!(stats_of(cl, node).rejects_sent, 0);
    }
    // Double-check no REJECT-typed packet exists in the trace by counting
    // extension stats; pkt::REJECT is only produced by the reject path.
    let _ = pkt::REJECT;
}
