//! Bit-exactness gate for the conservative parallel DES core.
//!
//! The parallel engine (DESIGN.md §15) promises that `.parallel(t)` only
//! trades wall-clock time: every virtual-time observable — latencies,
//! event counts, counters, histograms, traces — must be **bit-identical**
//! to the serial scheduler for any thread count. This suite pins that
//! promise three ways:
//!
//! 1. The full 310-configuration golden fixture (the pre-IR capture that
//!    `tests/golden_equivalence.rs` guards serially) re-run through the
//!    parallel path with 2 workers, demanding exact f64 equality.
//! 2. A property matrix over algorithms × faults × teams × placement ×
//!    tracing, comparing every `Measurement` component between serial and
//!    t ∈ {2, 4, 8}.
//! 3. The degenerate partitionings: a zero-lookahead fabric and a
//!    one-node cluster must fall back to the serial engine rather than
//!    deadlock or window incorrectly.

use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::events::GmEvent;
use nic_barrier_suite::gm::host::{HostCtx, HostProgram};
use nic_barrier_suite::gm::ids::GlobalPort;
use nic_barrier_suite::myrinet::route::Vertex;
use nic_barrier_suite::myrinet::topology::{LinkSpec, TopologyBuilder};
use nic_barrier_suite::testbed::prelude::*;
use nic_barrier_suite::testbed::run_all_with;

const GOLDEN: &str = include_str!("data/golden_barriers.txt");

fn parse_fixture() -> Vec<(Algorithm, usize, f64)> {
    GOLDEN
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut f = l.split_whitespace();
            let family = f.next().expect("family");
            let n: usize = f.next().expect("n").parse().expect("n parses");
            let dim: usize = f.next().expect("dim").parse().expect("dim parses");
            let mean_us: f64 = f.next().expect("mean").parse().expect("mean parses");
            let algorithm = match family {
                "nic-pe" => Algorithm::Nic(Descriptor::Pe),
                "host-pe" => Algorithm::Host(Descriptor::Pe),
                "nic-gb" => Algorithm::Nic(Descriptor::gb(dim)),
                "host-gb" => Algorithm::Host(Descriptor::gb(dim)),
                other => panic!("unknown family {other}"),
            };
            (algorithm, n, mean_us)
        })
        .collect()
}

/// The whole pre-refactor capture, replayed through the parallel engine.
///
/// Every golden configuration lives on a single crossbar, where the
/// partition map degrades to one LP per NIC — so 2 workers genuinely
/// exercises cross-LP windowing, not a serial fallback.
#[test]
fn golden_fixture_reproduced_bit_exactly_through_pdes() {
    let rows = parse_fixture();
    assert_eq!(rows.len(), 310, "fixture shape changed");
    let experiments: Vec<BarrierExperiment> = rows
        .iter()
        .map(|&(algorithm, n, _)| {
            BarrierExperiment::new(n, algorithm)
                .rounds(40, 5)
                .parallel(2)
        })
        .collect();
    let measured = run_all_with(&experiments, |e| e.run().unwrap().mean_us);
    let mut mismatches = Vec::new();
    for ((&(_, n, golden), got), e) in rows.iter().zip(&measured).zip(&experiments) {
        if golden != *got {
            mismatches.push(format!(
                "{} n={}: golden {:.17e} vs parallel {:.17e}",
                e.algorithm.name(),
                n,
                golden,
                got
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} configurations drifted under the parallel engine:\n{}",
        mismatches.len(),
        rows.len(),
        mismatches.join("\n")
    );
}

/// Compare every observable of two measurements, bit-for-bit where the
/// field is floating point. `Summary` and `Histogram` expose no
/// `PartialEq`, so their statistics are compared through accessors.
fn assert_identical(serial: &Measurement, par: &Measurement, label: &str) {
    let bits = |x: f64| x.to_bits();
    assert_eq!(
        bits(serial.mean_us),
        bits(par.mean_us),
        "{label}: mean_us {} vs {}",
        serial.mean_us,
        par.mean_us
    );
    assert_eq!(
        bits(serial.first_round_us),
        bits(par.first_round_us),
        "{label}: first_round_us"
    );
    assert_eq!(serial.events, par.events, "{label}: events fired");
    assert_eq!(serial.metrics, par.metrics, "{label}: metric counters");
    assert_eq!(
        serial.per_round.count(),
        par.per_round.count(),
        "{label}: per-round count"
    );
    assert_eq!(
        bits(serial.per_round.mean()),
        bits(par.per_round.mean()),
        "{label}: per-round mean"
    );
    assert_eq!(
        bits(serial.per_round.stddev()),
        bits(par.per_round.stddev()),
        "{label}: per-round stddev"
    );
    assert_eq!(
        bits(serial.per_round.min()),
        bits(par.per_round.min()),
        "{label}: per-round min"
    );
    assert_eq!(
        bits(serial.per_round.max()),
        bits(par.per_round.max()),
        "{label}: per-round max"
    );
    assert_eq!(
        serial.nic_turnaround.total(),
        par.nic_turnaround.total(),
        "{label}: turnaround samples"
    );
    assert_eq!(
        serial.nic_turnaround.mean().map(bits),
        par.nic_turnaround.mean().map(bits),
        "{label}: turnaround mean"
    );
    assert_eq!(
        serial.nic_turnaround.underflow(),
        par.nic_turnaround.underflow(),
        "{label}: turnaround underflow"
    );
    assert_eq!(
        serial.nic_turnaround.overflow(),
        par.nic_turnaround.overflow(),
        "{label}: turnaround overflow"
    );
    assert_eq!(serial.trace, par.trace, "{label}: structured trace");
}

/// Serial ≡ parallel(t) for t ∈ {2, 4, 8} across a configuration matrix
/// that exercises every mechanism the windowed engine must replay
/// deterministically: lossy links (fault RNG draw order), teams, packed
/// placement (same-NIC loopback stays in-LP), skewed starts, and bounded
/// trace rings (eviction order).
#[test]
fn parallel_measurements_match_serial_across_configs() {
    let configs: Vec<(&str, BarrierExperiment)> = vec![
        (
            "nic-pe n=16 lossy",
            BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe))
                .rounds(30, 4)
                .faults(FaultPlan::drops(0.02))
                .skew(3, 11),
        ),
        (
            "host-gb n=24 team",
            BarrierExperiment::new(24, Algorithm::Host(Descriptor::gb(2)))
                .rounds(20, 3)
                .team(TeamId(9)),
        ),
        (
            "nic-gb n=32 packed traced",
            BarrierExperiment::new(32, Algorithm::Nic(Descriptor::gb(4)))
                .rounds(20, 3)
                .placement(Placement::Packed { procs_per_node: 2 })
                .trace(512),
        ),
        (
            "nic-pe n=8 lossy traced",
            BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe))
                .rounds(25, 4)
                .faults(FaultPlan::drops(0.05))
                .trace(256),
        ),
    ];
    for (label, base) in &configs {
        let serial = base.run().unwrap();
        for threads in [2usize, 4, 8] {
            let par = base.parallel(threads).run().unwrap();
            assert_identical(&serial, &par, &format!("{label} t={threads}"));
        }
    }
}

/// Segment streams are the newest source of event-count pressure on the
/// windowed engine: a pipelined collective multiplies every wire packet,
/// per-lane combine, and DMA completion by the segment count, and the
/// per-segment REJECT/resend protocol interleaves with port-open skew.
/// All of it must still replay bit-identically under `build_parallel(2)`.
#[test]
fn segmented_payload_streams_replay_bit_identically() {
    use nic_barrier_suite::barrier::ReduceOp;
    use nic_barrier_suite::gm::Payload;
    let configs: Vec<(&str, BarrierExperiment)> = vec![
        (
            "nic-bcast n=16 pipelined 64K skewed",
            BarrierExperiment::new(
                16,
                Algorithm::Nic(Descriptor::bcast(2).with_payload(Payload::pipelined(65536, 4096))),
            )
            .rounds(12, 2)
            .skew(5, 97),
        ),
        (
            "nic-allreduce n=24 pipelined 20000/4096 lossy",
            BarrierExperiment::new(
                24,
                Algorithm::Nic(
                    Descriptor::allreduce(ReduceOp::Sum, 3)
                        .with_payload(Payload::pipelined(20000, 4096)),
                ),
            )
            .rounds(10, 2)
            .faults(FaultPlan::drops(0.02)),
        ),
        (
            "nic-scan n=12 pipelined odd-size packed",
            BarrierExperiment::new(
                12,
                Algorithm::Nic(
                    Descriptor::scan(ReduceOp::Max).with_payload(Payload::pipelined(9001, 2048)),
                ),
            )
            .rounds(10, 2)
            .placement(Placement::Packed { procs_per_node: 2 }),
        ),
        (
            "nic-reduce n=16 eager 16K traced",
            BarrierExperiment::new(
                16,
                Algorithm::Nic(
                    Descriptor::reduce(ReduceOp::Min, 2).with_payload(Payload::eager(16384)),
                ),
            )
            .rounds(10, 2)
            .trace(512),
        ),
    ];
    for (label, base) in &configs {
        let serial = base.run().unwrap();
        let par = base.parallel(2).run().unwrap();
        assert_identical(&serial, &par, label);
    }
}

/// Sends a short tagged ping-pong with a fixed peer; used to drive the
/// degenerate-topology clusters below with real traffic.
struct PingPong {
    peer: GlobalPort,
    initiator: bool,
}

impl HostProgram for PingPong {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        if self.initiator {
            ctx.send(self.peer, 64, 1);
        }
    }
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if let GmEvent::Recv { tag, .. } = ev {
            ctx.note(*tag);
            ctx.provide_recv(1);
            if *tag < 4 {
                ctx.send(self.peer, 64, tag + 1);
            }
        }
    }
}

fn ping_pong_cluster(n: usize) -> ClusterBuilder {
    let mut b = ClusterBuilder::new(n);
    for i in 0..n {
        let peer = GlobalPort::new((i + 1) % n, 1);
        b = b.program(
            GlobalPort::new(i, 1),
            Box::new(PingPong {
                peer,
                initiator: i % 2 == 0,
            }),
            SimTime::from_us(i as u64),
        );
    }
    b
}

/// A fabric whose minimum delivery latency is zero admits no conservative
/// window: the engine must refuse to partition and run serially — same
/// results, no deadlock.
#[test]
fn zero_lookahead_fabric_falls_back_to_serial() {
    let topology = || {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(SimTime::ZERO);
        let spec = LinkSpec {
            bytes_per_ns: f64::INFINITY,
            propagation: SimTime::ZERO,
        };
        for _ in 0..2 {
            let n = b.add_nic();
            b.connect(Vertex::Nic(n), Vertex::Switch(sw), spec);
        }
        let t = b.build();
        assert_eq!(t.min_delivery_latency(), Some(SimTime::ZERO));
        t
    };

    let mut serial = ping_pong_cluster(2).topology(topology()).build();
    assert_eq!(serial.run(), RunOutcome::Quiescent);
    let serial_events = serial.events_fired();
    let serial_world = serial.into_world();

    let mut par = ping_pong_cluster(2).topology(topology()).build_parallel(4);
    assert!(
        !par.is_parallel(),
        "zero lookahead must force the serial fallback"
    );
    assert_eq!(par.partitions(), 1);
    assert_eq!(par.run(), RunOutcome::Quiescent);
    assert_eq!(par.events_fired(), serial_events);
    assert_eq!(par.into_world().notes, serial_world.notes);
}

/// One node is one partition: nothing to overlap, so the engine runs the
/// proven serial scheduler instead of paying window synchronization.
#[test]
fn one_node_cluster_is_a_single_serial_partition() {
    let mut par = ping_pong_cluster(1).build_parallel(8);
    assert!(!par.is_parallel());
    assert_eq!(par.partitions(), 1);
    assert_eq!(par.run(), RunOutcome::Quiescent);

    let mut serial = ping_pong_cluster(1).build();
    assert_eq!(serial.run(), RunOutcome::Quiescent);
    assert_eq!(par.events_fired(), serial.events_fired());
}
