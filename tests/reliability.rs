//! §3.3 reliability and ordering: "a lost barrier message could hang
//! processes indefinitely" — with the reliable wire mode, barriers must
//! survive packet drops and corruption; and barrier packets travel in the
//! same ordered stream as data, so messages sent before a barrier are
//! delivered before it completes at the receiver.

use nic_barrier_suite::barrier::programs::{decode_note, note_tag, NicBarrierLoop};
use nic_barrier_suite::barrier::{BarrierExtension, BarrierGroup, Descriptor};
use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::{GlobalPort, GmConfig, GmEvent, HostCtx, HostProgram};
use nic_barrier_suite::lanai::NicModel;
use nic_barrier_suite::myrinet::fault::FaultPlan;

fn lossy_barrier_run(drop_p: f64, corrupt_p: f64, seed: u64, n: usize, rounds: u64) -> bool {
    let group = BarrierGroup::one_per_node(n, 1);
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .faults(
            FaultPlan {
                drop_probability: drop_p,
                corrupt_probability: corrupt_p,
                ..FaultPlan::NONE
            },
            seed,
        )
        .extension(BarrierExtension::factory());
    for rank in 0..n {
        b = b.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(
                group.clone(),
                rank,
                Descriptor::Pe,
                rounds,
            )),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    if sim.run() != RunOutcome::Quiescent {
        return false;
    }
    let done = sim
        .world()
        .notes
        .iter()
        .filter(|r| decode_note(r.tag).is_some())
        .count() as u64;
    done == n as u64 * rounds
}

#[test]
fn barriers_survive_packet_drops() {
    for seed in [1u64, 2, 3] {
        assert!(
            lossy_barrier_run(0.10, 0.0, seed, 8, 10),
            "10% drops, seed {seed}"
        );
    }
}

#[test]
fn barriers_survive_corruption() {
    assert!(lossy_barrier_run(0.0, 0.15, 7, 8, 10));
}

#[test]
fn barriers_survive_heavy_combined_loss() {
    assert!(lossy_barrier_run(0.25, 0.10, 11, 4, 8));
}

#[test]
fn gb_barriers_survive_drops_too() {
    let n = 6;
    let group = BarrierGroup::one_per_node(n, 1);
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .faults(FaultPlan::drops(0.15), 23)
        .extension(BarrierExtension::factory());
    for rank in 0..n {
        b = b.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(
                group.clone(),
                rank,
                Descriptor::gb(2),
                6,
            )),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let done = sim
        .world()
        .notes
        .iter()
        .filter(|r| decode_note(r.tag).is_some())
        .count();
    assert_eq!(done, n * 6);
}

#[test]
fn drops_actually_happened_and_were_retransmitted() {
    let n = 4;
    let group = BarrierGroup::one_per_node(n, 1);
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .faults(FaultPlan::drops(0.2), 5)
        .extension(BarrierExtension::factory());
    for rank in 0..n {
        b = b.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(group.clone(), rank, Descriptor::Pe, 10)),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    let cl = sim.world();
    assert!(
        cl.fabric.stats().drops > 0,
        "the fault plan must have fired"
    );
    let retx: u64 = (0..n).map(|i| cl.nodes[i].mcp.core.stats.retx).sum();
    assert!(retx > 0, "recovery must use retransmissions");
}

/// §3.3's ordering guarantee: a data message sent *before* the sender
/// initiates a barrier is received *before* that barrier completes at the
/// receiver (both travel the same reliable in-order stream).
struct SenderThenBarrier {
    group: BarrierGroup,
    peer: GlobalPort,
}
impl HostProgram for SenderThenBarrier {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        ctx.send(self.peer, 256, 777); // data first
        ctx.start_collective(self.group.pe_token(0)); // then the barrier
    }
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if matches!(ev, GmEvent::BarrierComplete { .. }) {
            ctx.note(note_tag(0));
        }
    }
}
struct ReceiverInBarrier {
    group: BarrierGroup,
    data_at: Option<SimTime>,
    barrier_at: Option<SimTime>,
}
impl HostProgram for ReceiverInBarrier {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        ctx.start_collective(self.group.pe_token(1));
    }
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        match ev {
            GmEvent::Recv { tag: 777, .. } => {
                self.data_at = Some(ctx.now);
                ctx.provide_recv(1);
                ctx.note(1000);
            }
            GmEvent::BarrierComplete { .. } => {
                self.barrier_at = Some(ctx.now);
                ctx.note(note_tag(0));
            }
            _ => {}
        }
    }
}

#[test]
fn message_before_barrier_arrives_before_barrier_completes() {
    // Run with drops so a retransmission could reorder things if the
    // implementation were wrong.
    for (seed, drops) in [(0u64, 0.0), (3, 0.2), (9, 0.2)] {
        let group = BarrierGroup::one_per_node(2, 1);
        let mut b = ClusterBuilder::new(2).config(GmConfig::paper_host(NicModel::LANAI_4_3));
        if drops > 0.0 {
            b = b.faults(FaultPlan::drops(drops), seed);
        }
        let mut sim = b
            .extension(BarrierExtension::factory())
            .program(
                group.member(0),
                Box::new(SenderThenBarrier {
                    group: group.clone(),
                    peer: group.member(1),
                }),
                SimTime::ZERO,
            )
            .program(
                group.member(1),
                Box::new(ReceiverInBarrier {
                    group: group.clone(),
                    data_at: None,
                    barrier_at: None,
                }),
                SimTime::ZERO,
            )
            .build();
        assert_eq!(sim.run(), RunOutcome::Quiescent, "seed {seed}");
        let cl = sim.world();
        let data_at = cl
            .notes
            .iter()
            .find(|n| n.tag == 1000)
            .map(|n| n.at)
            .expect("data must arrive");
        let barrier_at = cl
            .notes
            .iter()
            .filter(|n| decode_note(n.tag).is_some() && n.node.0 == 1)
            .map(|n| n.at)
            .max()
            .expect("barrier must complete at the receiver");
        assert!(
            data_at < barrier_at,
            "seed {seed}: data at {data_at:?} must precede barrier completion {barrier_at:?}"
        );
    }
}

#[test]
fn fault_free_and_faulty_runs_reach_identical_steady_state_results() {
    // Reliability is transparent: the set of completions is identical with
    // and without faults (times differ, results don't).
    let run_count = |faults: bool| {
        let n = 4;
        let group = BarrierGroup::one_per_node(n, 1);
        let mut b = ClusterBuilder::new(n)
            .config(GmConfig::paper_host(NicModel::LANAI_4_3))
            .extension(BarrierExtension::factory());
        if faults {
            b = b.faults(FaultPlan::drops(0.3), 17);
        }
        for rank in 0..n {
            b = b.program(
                group.member(rank),
                Box::new(NicBarrierLoop::new(group.clone(), rank, Descriptor::Pe, 7)),
                SimTime::ZERO,
            );
        }
        let mut sim = b.build();
        assert_eq!(sim.run(), RunOutcome::Quiescent);
        sim.world()
            .notes
            .iter()
            .filter(|r| decode_note(r.tag).is_some())
            .count()
    };
    assert_eq!(run_count(false), run_count(true));
}
