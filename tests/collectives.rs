//! The §8 future-work collectives, end to end: NIC-based broadcast, reduce
//! and allreduce must deliver correct values across sizes, dimensions,
//! skews and fault injection.

use nic_barrier_suite::barrier::programs::{OneShotCollective, NOTE_COLLECTIVE_VALUE};
use nic_barrier_suite::barrier::{BarrierExtension, BarrierGroup, ReduceOp};
use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::{ClusterBuilder, ClusterSim};
use nic_barrier_suite::gm::{CollectiveToken, GmConfig};
use nic_barrier_suite::lanai::NicModel;
use nic_barrier_suite::myrinet::fault::FaultPlan;

fn run_collective(
    n: usize,
    tokens: Vec<CollectiveToken>,
    skews: &[u64],
    faults: Option<(f64, u64)>,
) -> ClusterSim {
    let group = BarrierGroup::one_per_node(n, 1);
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    if let Some((p, seed)) = faults {
        b = b.faults(FaultPlan::drops(p), seed);
    }
    for (rank, token) in tokens.into_iter().enumerate() {
        b = b.program(
            group.member(rank),
            Box::new(OneShotCollective::new(token)),
            SimTime::from_us(skews.get(rank).copied().unwrap_or(0)),
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    sim
}

fn results(sim: &ClusterSim) -> Vec<(usize, u64)> {
    let mut v: Vec<(usize, u64)> = sim
        .world()
        .notes
        .iter()
        .filter(|n| n.tag & NOTE_COLLECTIVE_VALUE == NOTE_COLLECTIVE_VALUE)
        .map(|n| (n.node.0, n.tag & 0xFFFF_FFFF))
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn broadcast_delivers_root_value_everywhere() {
    for n in [2usize, 3, 7, 12] {
        for dim in [1usize, 2, 3] {
            let group = BarrierGroup::one_per_node(n, 1);
            let tokens = (0..n)
                .map(|r| group.broadcast_token(r, dim, if r == 0 { 5555 } else { 0 }))
                .collect();
            let sim = run_collective(n, tokens, &[], None);
            let vals = results(&sim);
            assert_eq!(vals.len(), n, "n={n} dim={dim}");
            assert!(
                vals.iter().all(|(_, v)| *v == 5555),
                "n={n} dim={dim}: {vals:?}"
            );
        }
    }
}

#[test]
fn reduce_sum_min_max_are_correct() {
    let n = 9;
    let contribs: Vec<u64> = (0..n as u64).map(|r| (r * 37 + 11) % 101).collect();
    for (op, expect) in [
        (ReduceOp::Sum, contribs.iter().sum::<u64>()),
        (ReduceOp::Min, *contribs.iter().min().unwrap()),
        (ReduceOp::Max, *contribs.iter().max().unwrap()),
    ] {
        let group = BarrierGroup::one_per_node(n, 1);
        let tokens = (0..n)
            .map(|r| group.reduce_token(op, r, 2, contribs[r]))
            .collect();
        let sim = run_collective(n, tokens, &[], None);
        let root = results(&sim)
            .into_iter()
            .find(|(node, _)| *node == 0)
            .expect("root result");
        assert_eq!(root.1, expect, "{op:?}");
    }
}

#[test]
fn allreduce_delivers_global_value_to_all() {
    for n in [2usize, 5, 8] {
        for dim in [1usize, 2, 4] {
            let group = BarrierGroup::one_per_node(n, 1);
            let tokens = (0..n)
                .map(|r| group.allreduce_token(ReduceOp::Sum, r, dim, r as u64 + 1))
                .collect();
            let sim = run_collective(n, tokens, &[], None);
            let expect: u64 = (1..=n as u64).sum();
            let vals = results(&sim);
            assert_eq!(vals.len(), n, "n={n} dim={dim}");
            assert!(
                vals.iter().all(|(_, v)| *v == expect),
                "n={n} dim={dim}: {vals:?} != {expect}"
            );
        }
    }
}

#[test]
fn scan_delivers_inclusive_prefixes() {
    // Hillis–Steele prefix scan through the same compiled-schedule path:
    // rank r must end with op(contrib[0], ..., contrib[r]).
    for n in [2usize, 3, 5, 8, 11] {
        let contribs: Vec<u64> = (0..n as u64).map(|r| (r * 13 + 7) % 50).collect();
        for op in [ReduceOp::Sum, ReduceOp::Max] {
            let group = BarrierGroup::one_per_node(n, 1);
            let tokens = (0..n)
                .map(|r| group.scan_token(op, r, contribs[r]))
                .collect();
            let sim = run_collective(n, tokens, &[], None);
            let vals = results(&sim);
            assert_eq!(vals.len(), n, "n={n} {op:?}");
            for (node, got) in vals {
                let expect = contribs[..=node]
                    .iter()
                    .copied()
                    .reduce(|a, b| op.combine(a, b))
                    .unwrap();
                assert_eq!(got, expect, "n={n} {op:?} rank={node}");
            }
        }
    }
}

#[test]
fn scan_correct_under_skew_and_drops() {
    let n = 7;
    let skews = [400u64, 0, 90, 610, 20, 300, 150];
    let group = BarrierGroup::one_per_node(n, 1);
    let tokens = (0..n)
        .map(|r| group.scan_token(ReduceOp::Sum, r, 1 << r))
        .collect();
    let sim = run_collective(n, tokens, &skews, Some((0.10, 3)));
    let vals = results(&sim);
    assert_eq!(vals.len(), n);
    for (node, got) in vals {
        assert_eq!(got, (1u64 << (node + 1)) - 1, "rank {node}");
    }
}

#[test]
fn collectives_correct_under_skew() {
    let n = 6;
    let skews = [500u64, 0, 120, 340, 60, 210];
    let group = BarrierGroup::one_per_node(n, 1);
    let tokens = (0..n)
        .map(|r| group.allreduce_token(ReduceOp::Max, r, 2, 10 + r as u64))
        .collect();
    let sim = run_collective(n, tokens, &skews, None);
    let vals = results(&sim);
    assert_eq!(vals.len(), n);
    assert!(vals.iter().all(|(_, v)| *v == 15));
}

#[test]
fn collectives_correct_under_drops() {
    let n = 5;
    for seed in [1u64, 2] {
        let group = BarrierGroup::one_per_node(n, 1);
        let tokens = (0..n)
            .map(|r| group.allreduce_token(ReduceOp::Sum, r, 2, 1 << r))
            .collect();
        let sim = run_collective(n, tokens, &[], Some((0.15, seed)));
        let vals = results(&sim);
        let expect = (1u64 << n) - 1;
        assert_eq!(vals.len(), n, "seed={seed}");
        assert!(vals.iter().all(|(_, v)| *v == expect), "seed={seed}");
    }
}

#[test]
fn reduce_root_gets_result_even_when_root_is_late() {
    let n = 4;
    let group = BarrierGroup::one_per_node(n, 1);
    let tokens = (0..n)
        .map(|r| group.reduce_token(ReduceOp::Sum, r, 3, 100 + r as u64))
        .collect();
    // Root starts last: every gather is an "unexpected" early arrival that
    // the record must hold (with its value!) until the root's token lands.
    let skews = [800u64, 0, 0, 0];
    let sim = run_collective(n, tokens, &skews, None);
    let root = results(&sim)
        .into_iter()
        .find(|(node, _)| *node == 0)
        .unwrap();
    assert_eq!(root.1, 100 + 101 + 102 + 103);
}

#[test]
fn broadcast_value_waits_for_late_receiver() {
    let n = 3;
    let group = BarrierGroup::one_per_node(n, 1);
    let tokens = (0..n)
        .map(|r| group.broadcast_token(r, 2, if r == 0 { 77 } else { 0 }))
        .collect();
    // Node 2 posts its token long after the root broadcast: the value is
    // recorded against its port and consumed when the token arrives.
    let skews = [0u64, 0, 2_000];
    let sim = run_collective(n, tokens, &skews, None);
    let vals = results(&sim);
    assert_eq!(vals.len(), n);
    assert!(vals.iter().all(|(_, v)| *v == 77));
    let late = sim
        .world()
        .notes
        .iter()
        .find(|nt| nt.node.0 == 2 && nt.tag & NOTE_COLLECTIVE_VALUE == NOTE_COLLECTIVE_VALUE)
        .unwrap();
    assert!(late.at > SimTime::from_ms(2));
}
