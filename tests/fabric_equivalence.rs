//! Bit-exactness gate for the parallel DES core on the PR-10 fabric zoo.
//!
//! Adaptive routing picks spines from the live per-link `busy` horizons,
//! so determinism rests on a sharper argument than the static tables did:
//! `Fabric::send` is invoked in the identical committed global order by
//! the serial scheduler and by the parallel engine's commit-window replay,
//! and the adaptive choice is a pure function of (src, dst, busy) with
//! ties broken to the lowest index (DESIGN.md §18). This suite pins that
//! argument end-to-end: serial ≡ parallel(2, 4) on an oversubscribed Clos
//! and a fat tree, with drop faults and adaptive routing enabled at once.

use nic_barrier_suite::testbed::prelude::*;

/// Compare every observable of two measurements, bit-for-bit where the
/// field is floating point (same contract as `tests/pdes_equivalence.rs`).
fn assert_identical(serial: &Measurement, par: &Measurement, label: &str) {
    let bits = |x: f64| x.to_bits();
    assert_eq!(
        bits(serial.mean_us),
        bits(par.mean_us),
        "{label}: mean_us {} vs {}",
        serial.mean_us,
        par.mean_us
    );
    assert_eq!(
        bits(serial.first_round_us),
        bits(par.first_round_us),
        "{label}: first_round_us"
    );
    assert_eq!(serial.events, par.events, "{label}: events fired");
    assert_eq!(serial.metrics, par.metrics, "{label}: metric counters");
    assert_eq!(
        serial.per_round.count(),
        par.per_round.count(),
        "{label}: per-round count"
    );
    assert_eq!(
        bits(serial.per_round.mean()),
        bits(par.per_round.mean()),
        "{label}: per-round mean"
    );
    assert_eq!(
        bits(serial.per_round.max()),
        bits(par.per_round.max()),
        "{label}: per-round max"
    );
    assert_eq!(serial.trace, par.trace, "{label}: structured trace");
}

fn check_serial_vs_parallel(label: &str, base: &BarrierExperiment) {
    let serial = base.run().unwrap();
    for threads in [2usize, 4] {
        let par = base.parallel(threads).run().unwrap();
        assert_identical(&serial, &par, &format!("{label} t={threads}"));
    }
}

/// A 4:1 oversubscribed Clos under drop faults with every routing policy:
/// the adaptive case is the one whose route choice depends on dynamic
/// fabric state, but static and dispersed ride along as controls.
#[test]
fn oversubscribed_clos_replays_bit_identically() {
    let spec = FabricSpec::Clos {
        leaves: 8,
        hosts_per_leaf: 8,
        spines: 2,
    };
    for (pname, policy) in [
        ("static", RoutePolicy::StaticBfs),
        ("dispersed", RoutePolicy::Dispersed),
        ("adaptive", RoutePolicy::Adaptive),
    ] {
        let e = BarrierExperiment::new(64, Algorithm::Nic(Descriptor::Pe))
            .rounds(20, 3)
            .fabric(spec, policy)
            .faults(FaultPlan::drops(0.02));
        check_serial_vs_parallel(&format!("clos-4to1 {pname} nic-pe lossy"), &e);
    }
    // A tree schedule stresses different links (gather funnels, root
    // incast) than the exchange; one adaptive lossy case suffices.
    let e = BarrierExperiment::new(64, Algorithm::Nic(Descriptor::gb(4)))
        .rounds(20, 3)
        .fabric(spec, RoutePolicy::Adaptive)
        .faults(FaultPlan::drops(0.02));
    check_serial_vs_parallel("clos-4to1 adaptive nic-gb4 lossy", &e);
}

/// A k=4 fat tree (16 hosts over three switch levels, 8 two-host LPs)
/// with faults, adaptive routing, and a trace ring — the trace pins event
/// interleaving, not just aggregates.
#[test]
fn fat_tree_replays_bit_identically() {
    let spec = FabricSpec::FatTree { k: 4 };
    let e = BarrierExperiment::new(16, Algorithm::Nic(Descriptor::Pe))
        .rounds(25, 4)
        .fabric(spec, RoutePolicy::Adaptive)
        .faults(FaultPlan::drops(0.03))
        .trace(512);
    check_serial_vs_parallel("fat-tree-k4 adaptive nic-pe lossy traced", &e);

    let e = BarrierExperiment::new(16, Algorithm::Host(Descriptor::dissemination_radix(3)))
        .rounds(15, 2)
        .fabric(spec, RoutePolicy::Adaptive)
        .faults(FaultPlan::drops(0.02));
    check_serial_vs_parallel("fat-tree-k4 adaptive host-dissem3 lossy", &e);
}

/// The adaptive k=8 fat tree at 128 hosts: a deeper partition fan-out
/// (32 edge LPs) than anything the pdes suite covers, fault-free so the
/// only dynamic input to routing is the contention state itself.
#[test]
fn large_fat_tree_adaptive_replays_bit_identically() {
    let e = BarrierExperiment::new(128, Algorithm::Nic(Descriptor::gb(8)))
        .rounds(12, 2)
        .fabric(FabricSpec::FatTree { k: 8 }, RoutePolicy::Adaptive);
    check_serial_vs_parallel("fat-tree-k8 adaptive nic-gb8", &e);
}

/// The capacity check: a fabric that cannot attach the cluster is a typed
/// configuration error, not a panic deep in cabling.
#[test]
fn fabric_too_small_is_a_typed_error() {
    let e = BarrierExperiment::new(64, Algorithm::Nic(Descriptor::Pe)).fabric(
        FabricSpec::Clos {
            leaves: 4,
            hosts_per_leaf: 8,
            spines: 8,
        },
        RoutePolicy::Dispersed,
    );
    assert_eq!(
        e.run().unwrap_err(),
        ExperimentError::FabricTooSmall {
            capacity: 32,
            nodes: 64
        }
    );
}
