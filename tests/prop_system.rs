//! System-level property tests: for arbitrary group sizes, algorithms,
//! tree dimensions, start skews and fault seeds, every barrier stream
//! completes and satisfies the barrier invariant.
//!
//! These run whole simulations per case, so case counts are kept modest;
//! run with `--release` for comfort.

use nic_barrier_suite::barrier::programs::{decode_note, NicAlgorithm, NicBarrierLoop};
use nic_barrier_suite::barrier::{BarrierExtension, BarrierGroup};
use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::{GlobalPort, GmConfig};
use nic_barrier_suite::lanai::NicModel;
use nic_barrier_suite::myrinet::FaultPlan;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    procs: usize,
    procs_per_node: usize,
    algo: NicAlgorithm,
    rounds: u64,
    skews: Vec<u64>,
    drop_pct: u8,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        2usize..=12,
        1usize..=3,
        // 0 = PE, 1..=4 = GB with that dim, 5 = dissemination
        prop_oneof![Just(0usize), 1usize..=4, Just(5usize)],
        1u64..=4,
        proptest::collection::vec(0u64..400, 12),
        0u8..=20,
        any::<u64>(),
    )
        .prop_map(
            |(procs, ppn, algo_sel, rounds, skews, drop_pct, seed)| Scenario {
                procs,
                procs_per_node: ppn,
                algo: match algo_sel {
                    0 => NicAlgorithm::Pe,
                    5 => NicAlgorithm::Dissemination,
                    dim => NicAlgorithm::Gb { dim },
                },
                rounds,
                skews,
                drop_pct,
                seed,
            },
        )
}

fn run_scenario(sc: &Scenario) -> Result<(), TestCaseError> {
    let members: Vec<GlobalPort> = (0..sc.procs)
        .map(|i| GlobalPort::new(i / sc.procs_per_node, 1 + (i % sc.procs_per_node) as u8))
        .collect();
    let nodes = sc.procs.div_ceil(sc.procs_per_node);
    let group = BarrierGroup::new(members);
    let mut b = ClusterBuilder::new(nodes)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    if sc.drop_pct > 0 {
        b = b.faults(FaultPlan::drops(sc.drop_pct as f64 / 100.0), sc.seed);
    }
    for rank in 0..sc.procs {
        b = b.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(group.clone(), rank, sc.algo, sc.rounds)),
            SimTime::from_us(sc.skews[rank % sc.skews.len()]),
        );
    }
    let mut sim = b.build();
    prop_assert_eq!(sim.run(), RunOutcome::Quiescent, "hung: {:?}", sc);
    let notes: Vec<(u64, SimTime)> = sim
        .world()
        .notes
        .iter()
        .filter_map(|n| decode_note(n.tag).map(|r| (r, n.at)))
        .collect();
    for round in 0..sc.rounds {
        let this: Vec<SimTime> = notes
            .iter()
            .filter(|(r, _)| *r == round)
            .map(|(_, t)| *t)
            .collect();
        prop_assert_eq!(this.len(), sc.procs, "round {} incomplete: {:?}", round, sc);
        if round > 0 {
            let min_this = this.iter().min().copied().unwrap();
            let max_prev = notes
                .iter()
                .filter(|(r, _)| *r + 1 == round)
                .map(|(_, t)| *t)
                .max()
                .unwrap();
            prop_assert!(min_this > max_prev, "invariant broken: {:?}", sc);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_scenario_synchronizes(sc in scenario()) {
        run_scenario(&sc)?;
    }
}

/// A directed regression sweep over the scenario corners the random
/// strategy may miss (maximum packing, dim ≥ procs, heavy loss).
#[test]
fn corner_scenarios() {
    let corners = [
        Scenario {
            procs: 12,
            procs_per_node: 3,
            algo: NicAlgorithm::Gb { dim: 4 },
            rounds: 3,
            skews: vec![0; 12],
            drop_pct: 20,
            seed: 7,
        },
        Scenario {
            procs: 2,
            procs_per_node: 2, // both processes on ONE node: wire never used
            algo: NicAlgorithm::Pe,
            rounds: 4,
            skews: vec![100, 0],
            drop_pct: 0,
            seed: 0,
        },
        Scenario {
            procs: 5,
            procs_per_node: 1,
            algo: NicAlgorithm::Gb { dim: 4 }, // dim ≈ procs: flat tree
            rounds: 2,
            skews: vec![0, 399, 1, 250, 9],
            drop_pct: 10,
            seed: 3,
        },
    ];
    for sc in &corners {
        run_scenario(sc).unwrap_or_else(|e| panic!("{sc:?}: {e}"));
    }
}
