//! System-level randomized tests: for arbitrary group sizes, algorithms,
//! tree dimensions, start skews and fault seeds, every barrier stream
//! completes and satisfies the barrier invariant.
//!
//! These run whole simulations per case, so case counts are kept modest;
//! run with `--release` for comfort.

use nic_barrier_suite::barrier::programs::{decode_note, NicBarrierLoop};
use nic_barrier_suite::barrier::{BarrierExtension, BarrierGroup, Descriptor};
use nic_barrier_suite::des::check::{forall, Gen};
use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::{GlobalPort, GmConfig};
use nic_barrier_suite::lanai::NicModel;
use nic_barrier_suite::myrinet::FaultPlan;

#[derive(Debug, Clone)]
struct Scenario {
    procs: usize,
    procs_per_node: usize,
    algo: Descriptor,
    rounds: u64,
    skews: Vec<u64>,
    drop_pct: u8,
    seed: u64,
}

fn scenario(g: &mut Gen) -> Scenario {
    // 0 = PE, 1..=4 = GB with that dim, 5..=7 = dissemination radix 2..4
    let algo = match g.usize_in(0, 7) {
        0 => Descriptor::Pe,
        5 => Descriptor::dissemination(),
        r @ (6 | 7) => Descriptor::dissemination_radix(r - 4),
        dim => Descriptor::gb(dim),
    };
    Scenario {
        procs: g.usize_in(2, 12),
        procs_per_node: g.usize_in(1, 3),
        algo,
        rounds: g.u64_in(1, 4),
        skews: (0..12).map(|_| g.u64_in(0, 399)).collect(),
        drop_pct: g.u8_in(0, 20),
        seed: g.any_u64(),
    }
}

fn run_scenario(sc: &Scenario) {
    let members: Vec<GlobalPort> = (0..sc.procs)
        .map(|i| GlobalPort::new(i / sc.procs_per_node, 1 + (i % sc.procs_per_node) as u8))
        .collect();
    let nodes = sc.procs.div_ceil(sc.procs_per_node);
    let group = BarrierGroup::new(members);
    let mut b = ClusterBuilder::new(nodes)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    if sc.drop_pct > 0 {
        b = b.faults(FaultPlan::drops(sc.drop_pct as f64 / 100.0), sc.seed);
    }
    for rank in 0..sc.procs {
        b = b.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(group.clone(), rank, sc.algo, sc.rounds)),
            SimTime::from_us(sc.skews[rank % sc.skews.len()]),
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent, "hung: {sc:?}");
    let notes: Vec<(u64, SimTime)> = sim
        .world()
        .notes
        .iter()
        .filter_map(|n| decode_note(n.tag).map(|r| (r, n.at)))
        .collect();
    for round in 0..sc.rounds {
        let this: Vec<SimTime> = notes
            .iter()
            .filter(|(r, _)| *r == round)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(this.len(), sc.procs, "round {round} incomplete: {sc:?}");
        if round > 0 {
            let min_this = this.iter().min().copied().unwrap();
            let max_prev = notes
                .iter()
                .filter(|(r, _)| *r + 1 == round)
                .map(|(_, t)| *t)
                .max()
                .unwrap();
            assert!(min_this > max_prev, "invariant broken: {sc:?}");
        }
    }
}

#[test]
fn any_scenario_synchronizes() {
    forall(48, 0x5757_0001, |g| {
        let sc = scenario(g);
        run_scenario(&sc);
    });
}

/// A directed regression sweep over the scenario corners the random
/// strategy may miss (maximum packing, dim ≥ procs, heavy loss).
#[test]
fn corner_scenarios() {
    let corners = [
        Scenario {
            procs: 12,
            procs_per_node: 3,
            algo: Descriptor::gb(4),
            rounds: 3,
            skews: vec![0; 12],
            drop_pct: 20,
            seed: 7,
        },
        Scenario {
            procs: 2,
            procs_per_node: 2, // both processes on ONE node: wire never used
            algo: Descriptor::Pe,
            rounds: 4,
            skews: vec![100, 0],
            drop_pct: 0,
            seed: 0,
        },
        Scenario {
            procs: 5,
            procs_per_node: 1,
            algo: Descriptor::gb(4), // dim ≈ procs: flat tree
            rounds: 2,
            skews: vec![0, 399, 1, 250, 9],
            drop_pct: 10,
            seed: 3,
        },
    ];
    for sc in &corners {
        run_scenario(sc);
    }
}

// ---- Segmentation oracle: pipelining must not change any result ----

use nic_barrier_suite::barrier::programs::{OneShotCollective, NOTE_COLLECTIVE_VALUE};
use nic_barrier_suite::barrier::ReduceOp;
use nic_barrier_suite::gm::Payload;

#[derive(Debug, Clone)]
struct SegScenario {
    n: usize,
    dim: usize,
    op: ReduceOp,
    /// 0 = reduce, 1 = allreduce, 2 = scan, 3 = broadcast.
    kind: usize,
    bytes: u64,
    seg_bytes: u64,
    values: Vec<u64>,
    skews: Vec<u64>,
    drop_pct: u8,
    seed: u64,
}

fn seg_scenario(g: &mut Gen) -> SegScenario {
    let n = g.usize_in(2, 10);
    // Always at least two segments, so the pipelined arm really pipelines.
    let seg_bytes = g.u64_in(1, 3) * 2048;
    let bytes = seg_bytes * g.u64_in(2, 6) + g.u64_in(0, seg_bytes - 1);
    SegScenario {
        n,
        dim: g.usize_in(1, 3),
        op: [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max][g.usize_in(0, 2)],
        kind: g.usize_in(0, 3),
        bytes,
        seg_bytes,
        // Small enough that a 10-rank Sum stays under 2^32: completion
        // notes pack the delivered value into the low 32 tag bits.
        values: (0..n).map(|_| g.u64_in(0, 0x0FFF_FFFF)).collect(),
        skews: (0..n).map(|_| g.u64_in(0, 399)).collect(),
        drop_pct: g.u8_in(0, 10),
        seed: g.any_u64(),
    }
}

/// Run one collective over `payload` and collect each rank's delivered
/// value, sorted by rank.
fn seg_run(sc: &SegScenario, payload: Payload) -> Vec<(usize, u64)> {
    let group = BarrierGroup::one_per_node(sc.n, 1);
    let desc = match sc.kind {
        0 => Descriptor::reduce(sc.op, sc.dim),
        1 => Descriptor::allreduce(sc.op, sc.dim),
        2 => Descriptor::scan(sc.op),
        _ => Descriptor::bcast(sc.dim),
    }
    .with_payload(payload);
    let mut b = ClusterBuilder::new(sc.n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    if sc.drop_pct > 0 {
        b = b.faults(FaultPlan::drops(sc.drop_pct as f64 / 100.0), sc.seed);
    }
    for rank in 0..sc.n {
        let value = if sc.kind == 3 && rank != 0 {
            0
        } else {
            sc.values[rank]
        };
        let token = group.token(desc, rank).with_value(value);
        b = b.program(
            group.member(rank),
            Box::new(OneShotCollective::new(token)),
            SimTime::from_us(sc.skews[rank]),
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent, "hung: {sc:?}");
    let mut out: Vec<(usize, u64)> = sim
        .world()
        .notes
        .iter()
        .filter(|n| n.tag & NOTE_COLLECTIVE_VALUE == NOTE_COLLECTIVE_VALUE)
        .map(|n| (n.node.0, n.tag & 0xFFFF_FFFF))
        .collect();
    out.sort_unstable();
    out
}

/// Cutting a payload into segments must not change any delivered value:
/// each segment is an independent combine lane, so the segmented run is
/// combine-order-identical to the unsegmented (eager) oracle — even with
/// skews and packet loss reordering arrivals.
#[test]
fn segmented_collectives_match_eager_oracle() {
    forall(32, 0x5e65_0001, |g| {
        let sc = seg_scenario(g);
        let eager = seg_run(&sc, Payload::eager(sc.bytes));
        let piped = seg_run(&sc, Payload::pipelined(sc.bytes, sc.seg_bytes));
        assert_eq!(eager, piped, "segmentation changed a result: {sc:?}");
        assert!(!eager.is_empty(), "no results delivered: {sc:?}");
    });
}
