//! The team refactor's safety property: a team of size N in an otherwise
//! idle cluster is *bit-identical* to today's global barrier. The team id
//! rides in the high half of the extension word and in note/tag bits the
//! firmware never prices, so relabeling the barrier must change nothing —
//! not the mean, not a single round gap, not one simulation event.

use gmsim_des::SimRng;
use gmsim_testbed::prelude::*;

/// Random non-global team ids, deterministic across runs.
fn team_ids(seed: u64, n: usize) -> Vec<TeamId> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| TeamId(1 + rng.below(65_534) as u32))
        .collect()
}

fn assert_identical(global: &Measurement, team: &Measurement, what: &str) {
    assert_eq!(global.mean_us, team.mean_us, "{what}: mean");
    assert_eq!(
        global.first_round_us, team.first_round_us,
        "{what}: first round"
    );
    assert_eq!(global.events, team.events, "{what}: event count");
    assert_eq!(
        global.per_round.mean(),
        team.per_round.mean(),
        "{what}: per-round mean"
    );
    assert_eq!(
        global.per_round.stddev(),
        team.per_round.stddev(),
        "{what}: per-round stddev"
    );
    for counter in [
        Counter::PacketsSent,
        Counter::FirmwareCycles,
        Counter::BarrierCompletions,
        Counter::LocalFlags,
        Counter::CompletionDmas,
        Counter::HostSends,
        Counter::HostEvents,
    ] {
        assert_eq!(
            global.metrics.get(counter),
            team.metrics.get(counter),
            "{what}: {counter:?}"
        );
    }
}

#[test]
fn team_of_size_n_is_bit_identical_to_global_barrier() {
    let algorithms = [
        Algorithm::Nic(Descriptor::Pe),
        Algorithm::Host(Descriptor::Pe),
        Algorithm::Nic(Descriptor::gb(2)),
        Algorithm::Nic(Descriptor::dissemination()),
    ];
    let sizes = [2usize, 3, 5, 8, 16];
    let ids = team_ids(0xDEC0DE, algorithms.len() * sizes.len());
    let mut case = 0;
    for &alg in &algorithms {
        for &n in &sizes {
            let team_id = ids[case];
            case += 1;
            let global = BarrierExperiment::new(n, alg)
                .rounds(40, 8)
                .run()
                .expect("global run");
            let team = BarrierExperiment::new(n, alg)
                .rounds(40, 8)
                .team(team_id)
                .run()
                .expect("team run");
            assert_identical(&global, &team, &format!("{alg:?} n={n} {team_id:?}"));
        }
    }
}

#[test]
fn team_label_survives_skew_and_packing() {
    // The property must also hold off the happy path: skewed starts and
    // multiple processes per node (the §3.4 same-NIC flags path).
    let skew_global = BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe))
        .rounds(30, 5)
        .skew(300, 11)
        .run()
        .expect("skewed global");
    let skew_team = BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe))
        .rounds(30, 5)
        .skew(300, 11)
        .team(TeamId(4242))
        .run()
        .expect("skewed team");
    assert_identical(&skew_global, &skew_team, "skewed");

    let packed_global = BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe))
        .rounds(30, 5)
        .placement(Placement::Packed { procs_per_node: 2 })
        .run()
        .expect("packed global");
    let packed_team = BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe))
        .rounds(30, 5)
        .placement(Placement::Packed { procs_per_node: 2 })
        .team(TeamId(7))
        .run()
        .expect("packed team");
    assert_identical(&packed_global, &packed_team, "packed");
}
