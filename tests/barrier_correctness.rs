//! Cross-crate integration tests: barrier *correctness* (not latency)
//! across algorithms, sizes, placements and topologies.
//!
//! The central invariant, from the definition of a barrier: **no process
//! completes barrier round k until every process has entered round k** —
//! and since a process enters round k only after completing round k−1, the
//! earliest round-k completion must come strictly after the latest
//! round-(k−1) completion.

use nic_barrier_suite::barrier::programs::{decode_note, NicBarrierLoop};
use nic_barrier_suite::barrier::{BarrierExtension, BarrierGroup, Descriptor, HostBarrierLoop};
use nic_barrier_suite::des::{RunOutcome, SimTime};
use nic_barrier_suite::gm::cluster::{ClusterBuilder, ClusterSim};
use nic_barrier_suite::gm::{GlobalPort, GmConfig, GmEvent, HostCtx, HostProgram};
use nic_barrier_suite::lanai::NicModel;
use nic_barrier_suite::myrinet::TopologyBuilder;
use nic_barrier_suite::testbed::{Algorithm, BarrierExperiment};

/// Extract `(round, node, time)` completions from a finished simulation.
fn completions(sim: &ClusterSim) -> Vec<(u64, usize, SimTime)> {
    sim.world()
        .notes
        .iter()
        .filter_map(|n| decode_note(n.tag).map(|r| (r, n.node.0, n.at)))
        .collect()
}

/// Assert the barrier invariant over a completed multi-round run.
fn assert_barrier_invariant(sim: &ClusterSim, procs: usize, rounds: u64) {
    let notes = completions(sim);
    for round in 0..rounds {
        let this: Vec<SimTime> = notes
            .iter()
            .filter(|(r, _, _)| *r == round)
            .map(|(_, _, t)| *t)
            .collect();
        assert_eq!(this.len(), procs, "round {round} incomplete");
        if round > 0 {
            let min_this = *this.iter().min().unwrap();
            let max_prev = notes
                .iter()
                .filter(|(r, _, _)| *r + 1 == round)
                .map(|(_, _, t)| *t)
                .max()
                .unwrap();
            assert!(
                min_this > max_prev,
                "round {round}: completion {min_this:?} before predecessor {max_prev:?}"
            );
        }
    }
}

fn build_nic_barrier_sim(
    group: &BarrierGroup,
    nodes: usize,
    algo: Descriptor,
    rounds: u64,
    skews: &[u64],
) -> ClusterSim {
    let mut b = ClusterBuilder::new(nodes)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    for rank in 0..group.len() {
        b = b.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(group.clone(), rank, algo, rounds)),
            SimTime::from_us(skews.get(rank).copied().unwrap_or(0)),
        );
    }
    b.build()
}

#[test]
fn nic_pe_invariant_all_sizes() {
    for n in [2usize, 3, 5, 8, 13, 16] {
        let group = BarrierGroup::one_per_node(n, 1);
        let mut sim = build_nic_barrier_sim(&group, n, Descriptor::Pe, 5, &[]);
        assert_eq!(sim.run(), RunOutcome::Quiescent, "n={n}");
        assert_barrier_invariant(&sim, n, 5);
    }
}

#[test]
fn nic_gb_invariant_all_dims() {
    let n = 9;
    for dim in 1..n {
        let group = BarrierGroup::one_per_node(n, 1);
        let mut sim = build_nic_barrier_sim(&group, n, Descriptor::gb(dim), 4, &[]);
        assert_eq!(sim.run(), RunOutcome::Quiescent, "dim={dim}");
        assert_barrier_invariant(&sim, n, 4);
    }
}

#[test]
fn nic_pe_invariant_under_heavy_skew() {
    let n = 8;
    let group = BarrierGroup::one_per_node(n, 1);
    let skews = [0u64, 900, 13, 450, 777, 1, 333, 620];
    let mut sim = build_nic_barrier_sim(&group, n, Descriptor::Pe, 6, &skews);
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    assert_barrier_invariant(&sim, n, 6);
    // The slowest starter gates round 0.
    let first = completions(&sim)
        .iter()
        .filter(|(r, _, _)| *r == 0)
        .map(|(_, _, t)| *t)
        .min()
        .unwrap();
    assert!(first > SimTime::from_us(900));
}

#[test]
fn packed_processes_share_nics_correctly() {
    // 12 processes on 4 nodes, 3 per node.
    let group = BarrierGroup::new(
        (0..12)
            .map(|i| GlobalPort::new(i / 3, 1 + (i % 3) as u8))
            .collect(),
    );
    let mut sim = build_nic_barrier_sim(&group, 4, Descriptor::Pe, 4, &[]);
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    assert_barrier_invariant(&sim, 12, 4);
}

#[test]
fn multi_switch_topology_works() {
    // 8 nodes spread over a chain of 4 switches.
    let n = 8;
    let group = BarrierGroup::one_per_node(n, 1);
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .topology(TopologyBuilder::switch_chain(4, 2))
        .extension(BarrierExtension::factory());
    for rank in 0..n {
        b = b.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(group.clone(), rank, Descriptor::Pe, 3)),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    assert_barrier_invariant(&sim, n, 3);
}

#[test]
fn multi_switch_is_slower_than_single_switch() {
    let single = BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe))
        .rounds(40, 5)
        .run()
        .unwrap();
    let n = 8;
    let group = BarrierGroup::one_per_node(n, 1);
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .topology(TopologyBuilder::switch_chain(8, 1))
        .extension(BarrierExtension::factory());
    for rank in 0..n {
        b = b.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(group.clone(), rank, Descriptor::Pe, 40)),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    sim.run();
    let last = completions(&sim).iter().map(|(_, _, t)| *t).max().unwrap();
    let chain_mean = last.as_us_f64() / 40.0;
    assert!(
        chain_mean > single.mean_us,
        "chain {chain_mean:.1} vs single {:.1}",
        single.mean_us
    );
}

/// A program that alternates PE and GB barriers in one stream — this is the
/// harshest test of the unexpected-record's packet-type checking: a node
/// racing ahead sends GB gathers while a peer still sits in the PE round.
struct AlternatingLoop {
    group: BarrierGroup,
    rank: usize,
    rounds: u64,
    round: u64,
}

impl AlternatingLoop {
    fn token(&self) -> nic_barrier_suite::gm::CollectiveToken {
        if self.round.is_multiple_of(2) {
            self.group.pe_token(self.rank)
        } else {
            self.group.gb_token(self.rank, 2)
        }
    }
}

impl HostProgram for AlternatingLoop {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        ctx.start_collective(self.token());
    }
    fn on_event(&mut self, ev: &GmEvent, ctx: &mut HostCtx) {
        if matches!(ev, GmEvent::BarrierComplete { .. }) {
            ctx.note(nic_barrier_suite::barrier::programs::note_tag(self.round));
            self.round += 1;
            if self.round < self.rounds {
                ctx.start_collective(self.token());
            }
        }
    }
}

#[test]
fn mixed_pe_gb_stream_synchronizes() {
    let n = 8;
    let rounds = 6;
    let group = BarrierGroup::one_per_node(n, 1);
    let mut b = ClusterBuilder::new(n)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    for rank in 0..n {
        b = b.program(
            group.member(rank),
            Box::new(AlternatingLoop {
                group: group.clone(),
                rank,
                rounds,
                round: 0,
            }),
            SimTime::from_us((rank as u64 * 29) % 97),
        );
    }
    let mut sim = b.build();
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    assert_barrier_invariant(&sim, n, rounds);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        BarrierExperiment::new(8, Algorithm::Nic(Descriptor::Pe))
            .rounds(50, 5)
            .skew(200, 99)
            .run()
            .unwrap()
            .mean_us
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give bit-identical results");
}

/// Non-power-of-two groups take the PE *fold* path (extra ranks fold into
/// the power-of-two core before the exchange and unfold after). Both
/// interpreters of the compiled schedule — the NIC firmware extension and
/// the host baseline — must run it end to end and keep the barrier
/// invariant.
#[test]
fn non_power_of_two_pe_fold_both_interpreters() {
    const ROUNDS: u64 = 4;
    for n in [3usize, 5, 6, 7, 11, 13] {
        let group = BarrierGroup::one_per_node(n, 1);

        // NIC interpreter: one collective token per round, the firmware
        // walks the folded schedule.
        let mut nic_sim = build_nic_barrier_sim(&group, n, Descriptor::Pe, ROUNDS, &[]);
        assert_eq!(nic_sim.run(), RunOutcome::Quiescent, "nic n={n}");
        assert_barrier_invariant(&nic_sim, n, ROUNDS);

        // Host interpreter: the same compiled schedule over plain sends.
        let mut b = ClusterBuilder::new(n)
            .config(GmConfig::paper_host(NicModel::LANAI_4_3))
            .extension(BarrierExtension::factory());
        for rank in 0..n {
            b = b.program(
                group.member(rank),
                Box::new(HostBarrierLoop::new(&group, rank, Descriptor::Pe, ROUNDS)),
                SimTime::from_us((rank as u64 * 41) % 113),
            );
        }
        let mut host_sim = b.build();
        assert_eq!(host_sim.run(), RunOutcome::Quiescent, "host n={n}");
        assert_barrier_invariant(&host_sim, n, ROUNDS);
    }
}

#[test]
fn single_process_barrier_is_trivial() {
    let group = BarrierGroup::one_per_node(1, 1);
    let mut sim = build_nic_barrier_sim(&group, 1, Descriptor::Pe, 3, &[]);
    assert_eq!(sim.run(), RunOutcome::Quiescent);
    assert_eq!(completions(&sim).len(), 3);
}
