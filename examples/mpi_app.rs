//! An MPI-style BSP application over the simulated cluster — the paper's
//! §8 future work ("study the effects of our NIC-based barrier operation on
//! higher communication layers, such as MPI ... and also at the application
//! level").
//!
//! The app: 8 ranks run supersteps of (compute 40 µs → halo exchange with
//! both ring neighbours → `MPI_Barrier`). We run it twice, with
//! `MPI_Barrier` bound to the host-based PE algorithm (MPICH-over-GM
//! style) and to the NIC-based barrier, and report application speedup —
//! which exceeds the raw-GM barrier factor because the MPI layer taxes
//! every host-level message of the host-based barrier.
//!
//! ```text
//! cargo run --release --example mpi_app
//! ```

use nic_barrier_suite::barrier::{BarrierExtension, BarrierGroup};
use nic_barrier_suite::des::SimTime;
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::GmConfig;
use nic_barrier_suite::lanai::NicModel;
use nic_barrier_suite::mpi::{script, MpiConfig, MpiProcess, NOTE_MPI_DONE};
use nic_barrier_suite::testbed::Table;

const RANKS: usize = 8;
const SUPERSTEPS: u64 = 50;
const COMPUTE_US: u64 = 40;

fn run_app(config: MpiConfig) -> f64 {
    let group = BarrierGroup::one_per_node(RANKS, 1);
    let mut b = ClusterBuilder::new(RANKS)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    for rank in 0..RANKS {
        let right = (rank + 1) % RANKS;
        let left = (rank + RANKS - 1) % RANKS;
        let program = script()
            .repeat(SUPERSTEPS, |b| {
                b.compute_us(COMPUTE_US)
                    .send(right, 1024, 1)
                    .send(left, 1024, 2)
                    .recv(left, 1)
                    .recv(right, 2)
                    .barrier()
            })
            .build();
        b = b.program(
            group.member(rank),
            Box::new(MpiProcess::new(group.clone(), rank, config, program)),
            SimTime::ZERO,
        );
    }
    let mut sim = b.build();
    sim.run();
    sim.world()
        .notes
        .iter()
        .filter(|n| n.tag == NOTE_MPI_DONE)
        .map(|n| n.at)
        .max()
        .expect("app did not finish")
        .as_us_f64()
}

fn main() {
    println!(
        "BSP app: {RANKS} ranks x {SUPERSTEPS} supersteps \
         (compute {COMPUTE_US}us + ring halo exchange + MPI_Barrier)\n"
    );
    let mut t = Table::new(vec![
        "MPI layer overhead",
        "host-based barrier (ms)",
        "NIC-based barrier (ms)",
        "app speedup",
    ]);
    for scale in [0.5f64, 1.0, 2.0, 4.0] {
        let host = run_app(MpiConfig::host_based().scaled(scale));
        let nic = run_app(MpiConfig::nic_based().scaled(scale));
        t.row(vec![
            format!("{scale:.1}x"),
            format!("{:.2}", host / 1_000.0),
            format!("{:.2}", nic / 1_000.0),
            format!("{:.2}x", host / nic),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nHeavier MPI layers widen the NIC barrier's application-level win,\n\
         exactly as §2.2 predicts: the host-based barrier pays the layer\n\
         log2(N) times per barrier, the NIC-based one pays it once."
    );
}
