//! Quickstart: run one NIC-based barrier on a simulated 8-node Myrinet/GM
//! cluster and print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nic_barrier_suite::barrier::programs::{decode_note, NicBarrierLoop};
use nic_barrier_suite::barrier::{nic::stats_of, BarrierExtension, BarrierGroup, Descriptor};
use nic_barrier_suite::des::SimTime;
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::GmConfig;
use nic_barrier_suite::lanai::NicModel;

fn main() {
    const NODES: usize = 8;
    // The group of endpoints to synchronize: port 1 on every node.
    let group = BarrierGroup::one_per_node(NODES, 1);

    // A cluster of 8 hosts with LANai 4.3 NICs on one crossbar switch,
    // with the barrier firmware extension loaded into every MCP.
    let mut builder = ClusterBuilder::new(NODES)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());

    // Each node runs a program that performs one NIC-based PE barrier.
    for rank in 0..NODES {
        builder = builder.program(
            group.member(rank),
            Box::new(NicBarrierLoop::new(group.clone(), rank, Descriptor::Pe, 1)),
            SimTime::ZERO,
        );
    }

    let mut sim = builder.build();
    sim.run();

    let cluster = sim.world();
    let done = cluster
        .notes
        .iter()
        .filter(|n| decode_note(n.tag).is_some())
        .map(|n| n.at)
        .max()
        .expect("barrier never completed");
    println!("8-node NIC-based PE barrier completed in {done}");

    // Per-NIC firmware statistics.
    for node in 0..NODES {
        let s = stats_of(cluster, node);
        let mcp = &cluster.nodes[node].mcp.core.stats;
        println!(
            "node {node}: {} barrier pkts sent, {} data-path pkts, {} acks, completion events {}",
            s.pe_msgs, mcp.data_tx, mcp.ack_tx, s.completions
        );
    }

    // The same barrier, host-based, for comparison.
    use nic_barrier_suite::testbed::{Algorithm, BarrierExperiment};
    let nic = BarrierExperiment::new(NODES, Algorithm::Nic(Descriptor::Pe))
        .run()
        .unwrap();
    let host = BarrierExperiment::new(NODES, Algorithm::Host(Descriptor::Pe))
        .run()
        .unwrap();
    println!(
        "steady state: NIC-based {:.2}us vs host-based {:.2}us -> {:.2}x improvement",
        nic.mean_us,
        host.mean_us,
        host.mean_us / nic.mean_us
    );
}
