//! Print the paper-vs-measured headline table (same data as
//! `repro headline`, through the public library API).
//!
//! ```text
//! cargo run --release --example latency_table
//! ```

use nic_barrier_suite::lanai::NicModel;
use nic_barrier_suite::testbed::{best_gb_dim, Algorithm, BarrierExperiment, Descriptor, Table};

fn main() {
    let l43 = NicModel::LANAI_4_3;
    let l72 = NicModel::LANAI_7_2;
    let run = |n: usize, a: Algorithm, nic: NicModel| {
        BarrierExperiment::new(n, a).nic(nic).run().unwrap().mean_us
    };

    let nic16 = run(16, Algorithm::Nic(Descriptor::Pe), l43);
    let host16 = run(16, Algorithm::Host(Descriptor::Pe), l43);
    let nic8 = run(8, Algorithm::Nic(Descriptor::Pe), l43);
    let host8 = run(8, Algorithm::Host(Descriptor::Pe), l43);
    let (gbd, gb16) = best_gb_dim(BarrierExperiment::new(
        16,
        Algorithm::Nic(Descriptor::gb(1)),
    ));
    let nic8f = run(8, Algorithm::Nic(Descriptor::Pe), l72);
    let host8f = run(8, Algorithm::Host(Descriptor::Pe), l72);

    let mut t = Table::new(vec!["paper claim", "paper", "this reproduction"]);
    t.row(vec![
        "NIC-PE barrier, 16 nodes, LANai 4.3".into(),
        "102.14 us".into(),
        format!("{nic16:.2} us"),
    ]);
    t.row(vec![
        format!("NIC-GB barrier, 16 nodes (best dim: ours d={gbd})"),
        "152.27 us".into(),
        format!("{:.2} us", gb16.mean_us),
    ]);
    t.row(vec![
        "factor of improvement, PE, 16 nodes".into(),
        "1.78x".into(),
        format!("{:.2}x", host16 / nic16),
    ]);
    t.row(vec![
        "factor of improvement, PE, 8 nodes, LANai 4.3".into(),
        "1.66x".into(),
        format!("{:.2}x", host8 / nic8),
    ]);
    t.row(vec![
        "NIC-PE barrier, 8 nodes, LANai 7.2".into(),
        "49.25 us".into(),
        format!("{nic8f:.2} us"),
    ]);
    t.row(vec![
        "host-PE barrier, 8 nodes, LANai 7.2".into(),
        "90.24 us".into(),
        format!("{host8f:.2} us"),
    ]);
    t.row(vec![
        "factor of improvement, PE, 8 nodes, LANai 7.2".into(),
        "1.83x".into(),
        format!("{:.2}x", host8f / nic8f),
    ]);
    print!("{}", t.render());
}
