//! NIC-based collectives beyond barrier — the paper's §8 future work.
//!
//! "We intend to investigate whether other collective communication
//! operations, such as reductions or all-to-all broadcast could benefit
//! from similar NIC-level implementations." This example runs NIC-based
//! broadcast, reduce and allreduce on the same firmware machinery and
//! verifies the values, then compares a NIC allreduce against doing the
//! equivalent with host-level messages.
//!
//! ```text
//! cargo run --release --example collectives
//! ```

use nic_barrier_suite::barrier::programs::{OneShotCollective, NOTE_COLLECTIVE_VALUE};
use nic_barrier_suite::barrier::{BarrierExtension, BarrierGroup, ReduceOp};
use nic_barrier_suite::des::SimTime;
use nic_barrier_suite::gm::cluster::{ClusterBuilder, ClusterSim};
use nic_barrier_suite::gm::{CollectiveToken, GmConfig};
use nic_barrier_suite::lanai::NicModel;

const NODES: usize = 8;
const DIM: usize = 2;

fn run(tokens: Vec<CollectiveToken>) -> ClusterSim {
    let group = BarrierGroup::one_per_node(NODES, 1);
    let mut builder = ClusterBuilder::new(NODES)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    for (rank, token) in tokens.into_iter().enumerate() {
        builder = builder.program(
            group.member(rank),
            Box::new(OneShotCollective::new(token)),
            SimTime::ZERO,
        );
    }
    let mut sim = builder.build();
    sim.run();
    sim
}

fn done_at(sim: &ClusterSim) -> SimTime {
    sim.world()
        .notes
        .iter()
        .map(|n| n.at)
        .max()
        .expect("no completions")
}

fn values(sim: &ClusterSim) -> Vec<(usize, u64)> {
    let mut v: Vec<(usize, u64)> = sim
        .world()
        .notes
        .iter()
        .filter(|n| n.tag & NOTE_COLLECTIVE_VALUE == NOTE_COLLECTIVE_VALUE)
        .map(|n| (n.node.0, n.tag & 0xFFFF_FFFF))
        .collect();
    v.sort_unstable();
    v
}

fn main() {
    let group = BarrierGroup::one_per_node(NODES, 1);

    // --- NIC broadcast: rank 0 pushes 424242 to everyone -----------------
    let sim = run((0..NODES)
        .map(|r| group.broadcast_token(r, DIM, if r == 0 { 424_242 } else { 0 }))
        .collect());
    let vals = values(&sim);
    println!("broadcast results: {vals:?}");
    assert!(vals.iter().all(|(_, v)| *v == 424_242));
    println!(
        "NIC broadcast delivered 424242 to all {NODES} nodes in {}",
        done_at(&sim)
    );

    // --- NIC reduce: sum of rank*rank lands at the root -------------------
    let sim = run((0..NODES)
        .map(|r| group.reduce_token(ReduceOp::Sum, r, DIM, (r * r) as u64))
        .collect());
    let expect: u64 = (0..NODES as u64).map(|r| r * r).sum();
    let root = values(&sim)
        .into_iter()
        .find(|(n, _)| *n == 0)
        .expect("root value");
    println!(
        "reduce(sum of rank^2) at root: {} (expected {expect})",
        root.1
    );
    assert_eq!(root.1, expect);

    // --- NIC allreduce: everyone learns the max -------------------------
    let sim = run((0..NODES)
        .map(|r| group.allreduce_token(ReduceOp::Max, r, DIM, 1_000 + r as u64 * 7))
        .collect());
    let vals = values(&sim);
    let expect = 1_000 + (NODES as u64 - 1) * 7;
    println!("allreduce(max) results: {vals:?}");
    assert_eq!(vals.len(), NODES);
    assert!(vals.iter().all(|(_, v)| *v == expect));
    println!(
        "NIC allreduce(max) = {expect} on every node in {}",
        done_at(&sim)
    );

    println!("\nall NIC-based collectives verified correct.");
}
