//! Fuzzy-barrier stencil: the paper's §2.1 motivation made concrete.
//!
//! An iterative stencil computation alternates a compute phase with a
//! barrier. With a host-based (or blocking) barrier the two phases are
//! serial; with the NIC-based barrier the host can compute its *interior*
//! points while the NIC synchronizes — Gupta's fuzzy barrier. This example
//! sweeps the compute grain and prints how much synchronization time the
//! fuzzy barrier hides, i.e. how much finer the parallel grain can get.
//!
//! ```text
//! cargo run --release --example fuzzy_stencil
//! ```

use nic_barrier_suite::testbed::{FuzzyExperiment, Table};

fn main() {
    const NODES: usize = 8;
    println!("iterative stencil on {NODES} nodes, LANai 4.3");
    println!("(per-iteration compute split: 75% interior overlappable, 25% boundary)\n");

    let mut t = Table::new(vec![
        "grain (us/iter)",
        "blocking (us/iter)",
        "fuzzy (us/iter)",
        "speedup",
        "sync overhead (blocking)",
        "sync overhead (fuzzy)",
    ]);
    for grain in [25u64, 50, 100, 200, 400] {
        // Blocking: all compute, then the barrier.
        let blocking = FuzzyExperiment::new(NODES, grain, false).run().mean_us;
        // Fuzzy: boundary compute happens before the barrier initiation (it
        // produces the halo the neighbours need); interior overlaps. We
        // model the non-overlappable boundary quarter as part of the next
        // round's critical path by overlapping only 75% of the grain.
        let interior = grain * 3 / 4;
        let boundary = grain - interior;
        let fuzzy = FuzzyExperiment::new(NODES, interior, true).run().mean_us + boundary as f64;
        let pure = grain as f64;
        t.row(vec![
            grain.to_string(),
            format!("{blocking:.2}"),
            format!("{fuzzy:.2}"),
            format!("{:.2}x", blocking / fuzzy),
            format!("{:.0}%", (blocking - pure) / pure * 100.0),
            format!("{:.0}%", (fuzzy - pure) / pure * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nThe finer the grain, the more the barrier dominates a blocking\n\
         iteration — and the more the NIC-based fuzzy barrier wins, which is\n\
         exactly the paper's \"finer-grained computation\" argument (§1)."
    );
}
