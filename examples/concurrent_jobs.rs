//! Multiple concurrent barriers on shared NICs (§3.4).
//!
//! Two independent parallel jobs share the same 4-node cluster: job A owns
//! port 1 on every node, job B owns port 2. Each runs its own stream of
//! NIC-based barriers concurrently — the firmware keeps per-port barrier
//! state ("the state information in the send token and ... a pointer in
//! the port data structure"), so the streams never interfere logically.
//! Job B also packs two processes per node, exercising the same-NIC
//! optimization: co-located peers complete via a NIC-local flag with no
//! wire traffic.
//!
//! ```text
//! cargo run --release --example concurrent_jobs
//! ```

use nic_barrier_suite::barrier::programs::{decode_note, NicBarrierLoop};
use nic_barrier_suite::barrier::{nic::stats_of, BarrierExtension, BarrierGroup, Descriptor};
use nic_barrier_suite::des::SimTime;
use nic_barrier_suite::gm::cluster::ClusterBuilder;
use nic_barrier_suite::gm::{GlobalPort, GmConfig};
use nic_barrier_suite::lanai::NicModel;

const NODES: usize = 4;
const ROUNDS: u64 = 50;

fn main() {
    // Job A: one process per node on port 1 (4 processes).
    let job_a = BarrierGroup::one_per_node(NODES, 1);
    // Job B: two processes per node, ports 2 and 3 (8 processes) — pairs
    // of co-located endpoints.
    let job_b = BarrierGroup::new(
        (0..NODES)
            .flat_map(|n| [GlobalPort::new(n, 2), GlobalPort::new(n, 3)])
            .collect(),
    );

    let mut builder = ClusterBuilder::new(NODES)
        .config(GmConfig::paper_host(NicModel::LANAI_4_3))
        .extension(BarrierExtension::factory());
    for rank in 0..job_a.len() {
        builder = builder.program(
            job_a.member(rank),
            Box::new(NicBarrierLoop::new(
                job_a.clone(),
                rank,
                Descriptor::Pe,
                ROUNDS,
            )),
            SimTime::ZERO,
        );
    }
    for rank in 0..job_b.len() {
        builder = builder.program(
            job_b.member(rank),
            Box::new(NicBarrierLoop::new(
                job_b.clone(),
                rank,
                Descriptor::gb(2),
                ROUNDS,
            )),
            // Job B starts later, mid-flight of job A's stream.
            SimTime::from_us(40),
        );
    }
    let mut sim = builder.build();
    sim.run();
    let cluster = sim.world();

    // Separate the two jobs' completion notes by port.
    let mut a_last = SimTime::ZERO;
    let mut b_last = SimTime::ZERO;
    let (mut a_count, mut b_count) = (0u64, 0u64);
    for n in &cluster.notes {
        if decode_note(n.tag).is_none() {
            continue;
        }
        if n.port == nic_barrier_suite::gm::PortId(1) {
            a_count += 1;
            a_last = a_last.max(n.at);
        } else {
            b_count += 1;
            b_last = b_last.max(n.at);
        }
    }
    assert_eq!(a_count, (job_a.len() as u64) * ROUNDS);
    assert_eq!(b_count, (job_b.len() as u64) * ROUNDS);
    println!(
        "job A: {ROUNDS} barriers x {} procs, finished at {a_last}",
        job_a.len()
    );
    println!(
        "job B: {ROUNDS} barriers x {} procs, finished at {b_last}",
        job_b.len()
    );

    let mut local_flags = 0;
    let mut wire_msgs = 0;
    for node in 0..NODES {
        let s = stats_of(cluster, node);
        local_flags += s.local_flags;
        wire_msgs += s.pe_msgs + s.gather_msgs + s.bcast_msgs - s.local_flags;
    }
    println!(
        "same-NIC optimization: {local_flags} barrier messages became local flags \
         ({wire_msgs} went to the wire)"
    );
    assert!(local_flags > 0, "co-located peers should use the flag path");
    println!("both jobs completed concurrently on shared NICs - no interference.");
}
